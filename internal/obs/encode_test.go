package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestAppendEventGolden(t *testing.T) {
	cases := []struct {
		name string
		got  []byte
		want string
	}{
		{
			"all-fields",
			appendEvent(nil, KindPush, 12.5, 3, 7, 42, 2, 0.625, "replace"),
			`{"k":"push","t":12.5,"a":3,"b":7,"id":42,"x":2,"v":0.625,"s":"replace"}`,
		},
		{
			"omissions", // negative a/b/id, zero x/v, empty s all drop out
			appendEvent(nil, KindKnowledge, 0, -1, -1, -1, 0, 0, ""),
			`{"k":"knowledge","t":0}`,
		},
		{
			"contact",
			appendEvent(nil, KindContactBegin, 3600, 0, 12, -1, 0, 0, ""),
			`{"k":"contact-begin","t":3600,"a":0,"b":12}`,
		},
		{
			"float-shortest", // shortest round-trip rendering, not %f
			appendEvent(nil, KindQueryAnswered, 0.1, 5, -1, 9, 0, 1e9, ""),
			`{"k":"query-answered","t":0.1,"a":5,"id":9,"v":1e+09}`,
		},
	}
	for _, c := range cases {
		if string(c.got) != c.want {
			t.Errorf("%s:\n got %s\nwant %s", c.name, c.got, c.want)
		}
		if !json.Valid(c.got) {
			t.Errorf("%s: not valid JSON: %s", c.name, c.got)
		}
	}
}

func TestAppendSpanGolden(t *testing.T) {
	cases := []struct {
		name string
		ev   SpanEvent
		want string
	}{
		{
			"segment", // custody segment: wait [t,nq], transfer v seconds
			SpanEvent{Trace: 0xdeadbeef01234567, ID: 3, Parent: 1, Op: "q-seg",
				Start: 100, End: 260.5, Enq: 250, A: 4, B: 9, Query: 7, Aux: 12, V: 10.5},
			`{"k":"span","t":100,"e":260.5,"nq":250,"tr":"deadbeef01234567","sp":3,"pa":1,` +
				`"op":"q-seg","a":4,"b":9,"id":7,"x":12,"v":10.5}`,
		},
		{
			"root", // parent -1 omitted, nq == t omitted, b < 0 omitted
			SpanEvent{Trace: 1, ID: 0, Parent: -1, Op: "issue",
				Start: 10, End: 500, Enq: 10, A: 2, B: -1, Query: 0, Aux: 5},
			`{"k":"span","t":10,"e":500,"tr":"0000000000000001","sp":0,"op":"issue","a":2,"id":0,"x":5}`,
		},
		{
			"point", // zero-extent span, zero x/v omitted, id 0 still present
			SpanEvent{Trace: 0xffffffffffffffff, ID: 5, Parent: 2, Op: "pull",
				Start: 33.25, End: 33.25, Enq: 33.25, A: 1, B: -1, Query: 0},
			`{"k":"span","t":33.25,"e":33.25,"tr":"ffffffffffffffff","sp":5,"pa":2,"op":"pull","a":1,"id":0}`,
		},
	}
	for _, c := range cases {
		got := appendSpan(nil, c.ev)
		if string(got) != c.want {
			t.Errorf("%s:\n got %s\nwant %s", c.name, got, c.want)
		}
		if !json.Valid(got) {
			t.Errorf("%s: not valid JSON: %s", c.name, got)
		}
	}
}

func TestAppendEventDeterministic(t *testing.T) {
	a := appendEvent(nil, KindCacheInsert, 1234.5678, 9, -1, 77, 0, 0.333, "")
	b := appendEvent(nil, KindCacheInsert, 1234.5678, 9, -1, 77, 0, 0.333, "")
	if string(a) != string(b) {
		t.Errorf("same event encoded differently:\n%s\n%s", a, b)
	}
}

func TestAppendManifestGolden(t *testing.T) {
	m := Manifest{
		Trace: "Infocom05", Scheme: "Intentional", Seed: 7,
		ConfigDigest: "deadbeefdeadbeef",
		GoVersion:    "go1.24.0", GoMaxProcs: 4, GitDescribe: "abc1234",
	}
	got := appendManifest(nil, m)
	want := `{"k":"manifest","trace":"Infocom05","scheme":"Intentional","seed":7,` +
		`"config_digest":"deadbeefdeadbeef","go_version":"go1.24.0","gomaxprocs":4,"git_describe":"abc1234"}`
	if string(got) != want {
		t.Errorf("manifest:\n got %s\nwant %s", got, want)
	}
	if string(m.AppendJSON(nil)) != want {
		t.Error("Manifest.AppendJSON diverges from appendManifest")
	}
	if !json.Valid(got) {
		t.Errorf("manifest not valid JSON: %s", got)
	}
	// Round-trip through encoding/json recovers every field.
	var back Manifest
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round-trip = %+v, want %+v", back, m)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v/%v, want %v/true", name, got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Error("unknown name resolved")
	}
	if Kind(250).String() != "unknown" {
		t.Error("out-of-range kind must stringify as unknown")
	}
}

func TestConfigDigestStable(t *testing.T) {
	type cfg struct {
		K    int
		Zipf float64
		Name string
	}
	a := ConfigDigest(cfg{8, 1.0, "x"})
	b := ConfigDigest(cfg{8, 1.0, "x"})
	if a != b {
		t.Errorf("same config digests differ: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Errorf("digest %q is not 16 hex chars", a)
	}
	if c := ConfigDigest(cfg{9, 1.0, "x"}); c == a {
		t.Error("different configs share a digest")
	}
}

func TestRecorderEventStream(t *testing.T) {
	var cb closeBuffer
	r := NewRecorder(NewStreamSink(&cb))
	r.Manifest(Manifest{Trace: "T", Seed: 1, GoVersion: "go1.24.0", GoMaxProcs: 1})
	r.ContactBegin(10, 1, 2)
	r.QueryIssued(20, 3, 0, 5)
	r.QueryAnswered(30, 3, 0, 10)
	r.QueryExpired(40, 4, 1)
	r.CacheInsert(50, 2, 5, 0.5)
	r.CacheEvict(60, 2, 5, 0.1)
	r.Push(70, 2, 6, 5, 1)
	r.Pull(80, 2, 3, 0)
	r.Knowledge(90, 3, 2)
	r.ContactEnd(95, 1, 2, 4096)
	r.Cell(1, 1.5, "Intentional")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(cb.String(), "\n"), "\n")
	if len(lines) != 12 {
		t.Fatalf("recorded %d lines, want 12", len(lines))
	}
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Errorf("line %d invalid JSON: %s", i, l)
		}
		var ev struct {
			K string `json:"k"`
		}
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatal(err)
		}
		if i == 0 && ev.K != "manifest" {
			t.Errorf("first line kind %q, want manifest", ev.K)
		}
		if _, ok := KindByName(ev.K); !ok {
			t.Errorf("line %d has unknown kind %q", i, ev.K)
		}
	}
}

// FuzzEncodeEvent asserts the hand-rolled encoder always emits one
// valid single-line JSON object for any input, including hostile
// labels and non-finite floats kept out by convention but not by type.
func FuzzEncodeEvent(f *testing.F) {
	f.Add(uint8(1), 12.5, int32(3), int32(7), int64(42), int64(2), 0.625, "replace")
	f.Add(uint8(0), 0.0, int32(-1), int32(-1), int64(-1), int64(0), 0.0, "")
	f.Add(uint8(11), math.MaxFloat64, int32(math.MaxInt32), int32(0), int64(math.MaxInt64), int64(-5), -0.0, "a\"b\\c\nd")
	f.Add(uint8(200), -1.0, int32(5), int32(5), int64(5), int64(5), 5.0, "\x00\xff")
	f.Fuzz(func(t *testing.T, k uint8, tm float64, a, b int32, id, aux int64, v float64, label string) {
		if math.IsNaN(tm) || math.IsInf(tm, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Skip("non-finite floats are excluded by the recorder's inputs (virtual time, utilities)")
		}
		line := appendEvent(nil, Kind(k), tm, a, b, id, aux, v, label)
		if !json.Valid(line) {
			t.Fatalf("invalid JSON: %q", line)
		}
		for _, c := range line {
			if c == '\n' {
				t.Fatalf("embedded newline breaks NDJSON framing: %q", line)
			}
		}
		// Deterministic: re-encoding yields identical bytes.
		if again := appendEvent(nil, Kind(k), tm, a, b, id, aux, v, label); string(again) != string(line) {
			t.Fatalf("non-deterministic encoding:\n%q\n%q", line, again)
		}
	})
}

// FuzzEncodeSpan is FuzzEncodeEvent's twin for the span line family:
// any span must encode to one valid single-line JSON object,
// deterministically.
func FuzzEncodeSpan(f *testing.F) {
	f.Add(uint64(0xdeadbeef), int64(3), int64(1), "q-seg", 100.0, 260.5, 250.0, int32(4), int32(9), int64(7), int64(12), 10.5)
	f.Add(uint64(0), int64(0), int64(-1), "issue", 0.0, 0.0, 0.0, int32(-1), int32(-1), int64(0), int64(0), 0.0)
	f.Add(uint64(math.MaxUint64), int64(math.MaxInt64), int64(math.MinInt64), "a\"b\\c\nd", -1.5, math.MaxFloat64, -0.0, int32(math.MinInt32), int32(math.MaxInt32), int64(-9), int64(-1), 1e-308)
	f.Fuzz(func(t *testing.T, tr uint64, id, pa int64, op string, start, end, enq float64, a, b int32, q, aux int64, v float64) {
		for _, x := range []float64{start, end, enq, v} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Skip("non-finite floats are excluded by the tracer's inputs (virtual time)")
			}
		}
		ev := SpanEvent{Trace: tr, ID: id, Parent: pa, Op: op,
			Start: start, End: end, Enq: enq, A: a, B: b, Query: q, Aux: aux, V: v}
		line := appendSpan(nil, ev)
		if !json.Valid(line) {
			t.Fatalf("invalid JSON: %q", line)
		}
		for _, c := range line {
			if c == '\n' {
				t.Fatalf("embedded newline breaks NDJSON framing: %q", line)
			}
		}
		if again := appendSpan(nil, ev); string(again) != string(line) {
			t.Fatalf("non-deterministic encoding:\n%q\n%q", line, again)
		}
	})
}
