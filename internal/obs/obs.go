// Package obs is the simulation-wide observability layer: typed
// counters/gauges/histograms registered per subsystem, phase timers
// around the coarse stages of a run (trace load, knowledge build,
// replay, report), and a structured NDJSON run-trace of simulation
// events with pluggable sinks (full stream, bounded flight-recorder
// ring, sampling).
//
// Everything routes through a nil-safe *Recorder: a nil recorder (the
// default everywhere) makes every instrumentation site a single
// pointer test, so the disabled path costs no allocation and no work —
// the replay hot path stays at 0 allocs/op (asserted in
// internal/sim). Determinism contract: events carry only virtual-time
// and seed-derived values, so a recorded trace is byte-identical
// across runs at a fixed seed; wall-clock readings are confined to the
// phase timers, whose clock is injected by the CLI layer and whose
// output never enters the trace.
//
//dtn:determinism
package obs

import "io"

// Kind identifies one simulation event type in the run-trace.
type Kind uint8

// Event kinds. The manifest pseudo-kind tags the header line written
// once at the start of a trace.
const (
	KindManifest Kind = iota
	// KindContactBegin: a contact opened (a, b = endpoints).
	KindContactBegin
	// KindContactEnd: a contact closed (a, b = endpoints, v = bits
	// delivered on it).
	KindContactEnd
	// KindQueryIssued: a requester sent a query into the network
	// (a = requester, id = query ID, aux = data ID).
	KindQueryIssued
	// KindQueryAnswered: the first on-time data copy reached the
	// requester (a = requester, id = query ID, v = access delay in
	// seconds).
	KindQueryAnswered
	// KindQueryExpired: a query's deadline passed unanswered
	// (a = requester, id = query ID).
	KindQueryExpired
	// KindCacheInsert: a node cached a data copy (a = node, id = data
	// ID, v = utility or size).
	KindCacheInsert
	// KindCacheEvict: a node dropped a cached copy (a = node, id = data
	// ID, v = utility at eviction).
	KindCacheEvict
	// KindPush: a push transfer of a data copy toward its NCL was
	// enqueued (a = holder, b = next relay, id = data ID, aux = NCL
	// index).
	KindPush
	// KindPull: a caching or source node decided to return data for a
	// query (a = responder, b = requester, id = query ID).
	KindPull
	// KindKnowledge: a knowledge snapshot refresh was applied
	// (aux = snapshot version, v = number of reused source
	// computations).
	KindKnowledge
	// KindCell: one sweep cell of an experiment run completed
	// (aux = completion index, v = wall seconds; cmd/experiments only,
	// not byte-stable under parallel sweeps).
	KindCell
	// KindNodeDown: fault injection crashed a node (a = node).
	KindNodeDown
	// KindNodeUp: a crashed node recovered (a = node).
	KindNodeUp
	// KindContactTruncated: fault injection shortened a contact
	// (a, b = endpoints, v = the new, earlier end time).
	KindContactTruncated
	// KindTransferKilled: fault injection killed an in-flight transfer
	// (a = sender, b = receiver, v = bits lost).
	KindTransferKilled
	// KindQueryRetry: a query was re-issued after its retry timeout
	// (a = requester, id = query ID, aux = attempt number).
	KindQueryRetry
	// KindFailover: an NCL's traffic was re-targeted to a stand-in
	// because the configured central is down (a = configured center,
	// b = stand-in, aux = NCL index).
	KindFailover
	// KindReplicate: a cached item lost in a crash was queued for
	// re-replication from its source (a = source, id = data ID,
	// aux = NCL index).
	KindReplicate
	// KindSpan: one causal span of a query's provenance tree (see
	// internal/provenance); carries its own field set, encoded by
	// appendSpan rather than appendEvent.
	KindSpan

	kindCount
)

var kindNames = [kindCount]string{
	"manifest",
	"contact-begin", "contact-end",
	"query-issued", "query-answered", "query-expired",
	"cache-insert", "cache-evict",
	"push", "pull",
	"knowledge", "cell",
	"node-down", "node-up",
	"contact-truncated", "transfer-killed",
	"query-retry", "ncl-failover", "re-replicate",
	"span",
}

// String returns the stable NDJSON name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a trace kind name back to its Kind; ok is false
// for unknown names.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithPhases attaches a phase-timer set (its clock is injected by the
// caller; see NewPhases).
func WithPhases(p *Phases) Option {
	return func(r *Recorder) { r.phases = p }
}

// Recorder is the instrumentation hub handed to the simulation layers.
// All methods are safe on a nil receiver: the nil path is a single
// branch, which is what keeps disabled instrumentation free. Metric
// updates are atomic, but Event/Manifest reuse one encode buffer and
// must be serialized by the caller when producers span goroutines
// (cmd/experiments guards its cell hook with a mutex; single-run
// simulations are single-goroutine by construction).
type Recorder struct {
	sink   Sink
	reg    *Registry
	phases *Phases
	buf    []byte // encode scratch, reused across events
}

// NewRecorder creates a recorder writing trace events to sink (nil for
// metrics/phases only) with a fresh metric registry.
func NewRecorder(sink Sink, opts ...Option) *Recorder {
	r := &Recorder{sink: sink, reg: NewRegistry()}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Registry returns the metric registry (nil on a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Counter registers (or fetches) the named counter. It returns nil on
// a nil recorder, and Counter methods are nil-safe, so call sites may
// cache the result unconditionally.
func (r *Recorder) Counter(subsystem, name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(subsystem, name)
}

// Gauge registers (or fetches) the named gauge; nil on a nil recorder.
func (r *Recorder) Gauge(subsystem, name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(subsystem, name)
}

// Histogram registers (or fetches) the named fixed-bucket histogram;
// nil on a nil recorder. Bounds are only consulted on first
// registration.
func (r *Recorder) Histogram(subsystem, name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(subsystem, name, bounds)
}

// Phase opens a named wall-clock span and returns its closer. On a nil
// recorder (or one without phase timers) it returns a no-op closer.
// Phase timings never enter the trace sink: they are wall-clock and
// would break byte-identity.
func (r *Recorder) Phase(name string) func() {
	if r == nil || r.phases == nil {
		return func() {}
	}
	return r.phases.Start(name)
}

// Phases returns the attached phase-timer set, nil when absent.
func (r *Recorder) Phases() *Phases {
	if r == nil {
		return nil
	}
	return r.phases
}

// Event records one simulation event into the trace sink. Negative a/b
// and id mean "not applicable" and are omitted from the encoding, as
// are zero aux/v; label (omitted when empty) must be a static string
// such as a scheme name. No-op without a sink.
func (r *Recorder) Event(k Kind, t float64, a, b int32, id, aux int64, v float64, label string) {
	if r == nil || r.sink == nil {
		return
	}
	r.buf = appendEvent(r.buf[:0], k, t, a, b, id, aux, v, label)
	r.sink.WriteLine(r.buf)
}

// SpanEvent is one causal span of a query's provenance tree (built by
// internal/provenance): a virtual-time interval [Start, End] with a
// cause edge to its parent span inside the same trace. Spans are their
// own trace line family (k == "span") so existing consumers keep
// working and span-bearing traces stay byte-deterministic.
type SpanEvent struct {
	// Trace is the query's trace ID, derived from (seed, query ID);
	// encoded as 16 lowercase hex digits.
	Trace uint64
	// ID is the span's sequence number inside its trace (root = 0)
	// and Parent its cause edge (-1 on the root, omitted then).
	ID, Parent int64
	// Op names the span kind; must be a static string (e.g. "q-seg").
	Op string
	// Start and End delimit the span in virtual seconds. Enq is the
	// transfer-enqueue instant of custody segments; it equals Start
	// (and is omitted) for spans without a link transfer.
	Start, End, Enq float64
	// A is the acting node and B the receiving peer; negative values
	// mean "not applicable" and are omitted.
	A, B int32
	// Query is the query ID the span belongs to (always encoded).
	Query int64
	// Aux and V carry op-specific payload (data ID, NCL index, Eq. 6
	// utility, link service time...); zero values are omitted.
	Aux int64
	V   float64
}

// Span records one provenance span into the trace sink. No-op without
// a sink; like Event it reuses the recorder's encode scratch, so
// producers must be serialized by the caller.
func (r *Recorder) Span(ev SpanEvent) {
	if r == nil || r.sink == nil {
		return
	}
	r.buf = appendSpan(r.buf[:0], ev)
	r.sink.WriteLine(r.buf)
}

// TraceEnabled reports whether trace events actually reach a sink —
// the gate layers use to decide whether building span state is worth
// anything at all.
func (r *Recorder) TraceEnabled() bool {
	return r != nil && r.sink != nil
}

// Manifest writes the run-manifest header line into the trace sink.
func (r *Recorder) Manifest(m Manifest) {
	if r == nil || r.sink == nil {
		return
	}
	r.buf = appendManifest(r.buf[:0], m)
	r.sink.WriteLine(r.buf)
}

// Close flushes and closes the trace sink (nil-safe).
func (r *Recorder) Close() error {
	if r == nil || r.sink == nil {
		return nil
	}
	return r.sink.Close()
}

// WriteSummary renders the phase timers and the metric registry as an
// aligned text block (the -obs-summary output).
func (r *Recorder) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	if r.phases != nil {
		if err := r.phases.WriteSummary(w); err != nil {
			return err
		}
	}
	return r.reg.WriteSummary(w)
}

// --- typed event helpers (all nil-safe via Event) ---

// ContactBegin records a contact opening.
func (r *Recorder) ContactBegin(t float64, a, b int32) {
	r.Event(KindContactBegin, t, a, b, -1, 0, 0, "")
}

// ContactEnd records a contact closing with the bits it delivered.
func (r *Recorder) ContactEnd(t float64, a, b int32, sentBits float64) {
	r.Event(KindContactEnd, t, a, b, -1, 0, sentBits, "")
}

// QueryIssued records a query entering the network.
func (r *Recorder) QueryIssued(t float64, requester int32, queryID, dataID int64) {
	r.Event(KindQueryIssued, t, requester, -1, queryID, dataID, 0, "")
}

// QueryAnswered records the first on-time delivery satisfying a query.
func (r *Recorder) QueryAnswered(t float64, requester int32, queryID int64, delaySec float64) {
	r.Event(KindQueryAnswered, t, requester, -1, queryID, 0, delaySec, "")
}

// QueryExpired records a query whose deadline passed unanswered.
func (r *Recorder) QueryExpired(t float64, requester int32, queryID int64) {
	r.Event(KindQueryExpired, t, requester, -1, queryID, 0, 0, "")
}

// CacheInsert records a node caching a data copy with its utility (or
// size, where no utility applies yet).
func (r *Recorder) CacheInsert(t float64, node int32, dataID int64, utility float64) {
	r.Event(KindCacheInsert, t, node, -1, dataID, 0, utility, "")
}

// CacheEvict records a node dropping a cached copy with the utility it
// had at eviction.
func (r *Recorder) CacheEvict(t float64, node int32, dataID int64, utility float64) {
	r.Event(KindCacheEvict, t, node, -1, dataID, 0, utility, "")
}

// Push records a push transfer of a data copy being enqueued toward
// its NCL.
func (r *Recorder) Push(t float64, from, to int32, dataID int64, ncl int64) {
	r.Event(KindPush, t, from, to, dataID, ncl, 0, "")
}

// Pull records a node's decision to return data for a query.
func (r *Recorder) Pull(t float64, responder, requester int32, queryID int64) {
	r.Event(KindPull, t, responder, requester, queryID, 0, 0, "")
}

// Knowledge records a knowledge snapshot refresh being applied.
func (r *Recorder) Knowledge(t float64, version int64, reusedSources float64) {
	r.Event(KindKnowledge, t, -1, -1, -1, version, reusedSources, "")
}

// Cell records one experiment sweep cell completing after wallSec
// seconds (cmd/experiments only; wall-clock, so not byte-stable).
func (r *Recorder) Cell(index int64, wallSec float64, label string) {
	r.Event(KindCell, 0, -1, -1, -1, index, wallSec, label)
}

// NodeDown records fault injection crashing a node.
func (r *Recorder) NodeDown(t float64, node int32) {
	r.Event(KindNodeDown, t, node, -1, -1, 0, 0, "")
}

// NodeUp records a crashed node recovering.
func (r *Recorder) NodeUp(t float64, node int32) {
	r.Event(KindNodeUp, t, node, -1, -1, 0, 0, "")
}

// ContactTruncated records fault injection shortening a contact to end
// at newEnd instead of its traced end.
func (r *Recorder) ContactTruncated(t float64, a, b int32, newEnd float64) {
	r.Event(KindContactTruncated, t, a, b, -1, 0, newEnd, "")
}

// TransferKilled records fault injection killing an in-flight transfer.
func (r *Recorder) TransferKilled(t float64, from, to int32, bits float64) {
	r.Event(KindTransferKilled, t, from, to, -1, 0, bits, "")
}

// QueryRetry records a query being re-issued on its attempt'th try.
func (r *Recorder) QueryRetry(t float64, requester int32, queryID int64, attempt int64) {
	r.Event(KindQueryRetry, t, requester, -1, queryID, attempt, 0, "")
}

// Failover records NCL traffic re-targeting from a down center to a
// stand-in node.
func (r *Recorder) Failover(t float64, center, standIn int32, ncl int64) {
	r.Event(KindFailover, t, center, standIn, -1, ncl, 0, "")
}

// Replicate records a crash-lost cached item being queued for
// re-replication from its source toward its NCL.
func (r *Recorder) Replicate(t float64, source int32, dataID int64, ncl int64) {
	r.Event(KindReplicate, t, source, -1, dataID, ncl, 0, "")
}
