package obs

import (
	"strings"
	"testing"
)

// fakeClock is a settable nanosecond clock for phase tests.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64 { return c.ns }

func TestPhasesAccumulate(t *testing.T) {
	clk := &fakeClock{}
	p := NewPhases(clk.now)

	done := p.Start("load")
	clk.ns = 100
	done()
	done() // double close is a no-op

	done = p.Start("load")
	clk.ns = 250
	done()

	done = p.Start("replay")
	clk.ns = 1250
	done()

	names, totals, counts := p.Totals()
	if len(names) != 2 || names[0] != "load" || names[1] != "replay" {
		t.Fatalf("names = %v, want [load replay] in first-start order", names)
	}
	if totals[0] != 250 || counts[0] != 2 {
		t.Errorf("load = %dns over %d spans, want 250ns over 2", totals[0], counts[0])
	}
	if totals[1] != 1000 || counts[1] != 1 {
		t.Errorf("replay = %dns over %d spans, want 1000ns over 1", totals[1], counts[1])
	}
}

func TestPhasesAddDirect(t *testing.T) {
	p := NewPhases(nil) // nil clock: usable, zero-duration Starts
	p.Add("cell:Intentional", 5e6)
	p.Add("cell:Intentional", 3e6)
	names, totals, counts := p.Totals()
	if len(names) != 1 || totals[0] != 8e6 || counts[0] != 2 {
		t.Errorf("totals = %v/%v/%v, want one phase 8e6ns x2", names, totals, counts)
	}
	var sb strings.Builder
	if err := p.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cell:Intentional") ||
		!strings.Contains(sb.String(), "8.000ms") {
		t.Errorf("summary = %q", sb.String())
	}
}

func TestPhasesNilSafe(t *testing.T) {
	var p *Phases
	p.Start("x")()
	p.Add("x", 1)
	if n, _, _ := p.Totals(); n != nil {
		t.Error("nil phases returned totals")
	}
	if err := p.WriteSummary(&strings.Builder{}); err != nil {
		t.Errorf("nil phases WriteSummary: %v", err)
	}
	// Empty phase set renders nothing.
	var sb strings.Builder
	if err := NewPhases(nil).WriteSummary(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("empty phases wrote %q (err %v)", sb.String(), err)
	}
}

func TestRecorderPhaseWiring(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(nil, WithPhases(NewPhases(clk.now)))
	done := r.Phase("report")
	clk.ns = 42
	done()
	if r.Phases() == nil {
		t.Fatal("phases not attached")
	}
	_, totals, _ := r.Phases().Totals()
	if len(totals) != 1 || totals[0] != 42 {
		t.Errorf("totals = %v, want [42]", totals)
	}
	// A recorder without phases hands out working no-op closers.
	NewRecorder(nil).Phase("x")()
}
