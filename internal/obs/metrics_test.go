package obs

import (
	"strings"
	"testing"
)

func TestNilMetricHandlesAreSafe(t *testing.T) {
	// The disabled-instrumentation contract: call sites cache possibly
	// nil handles and use them unconditionally.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Total() != 0 {
		t.Error("nil histogram total != 0")
	}
	if b, cts := h.Buckets(); b != nil || cts != nil {
		t.Error("nil histogram buckets non-nil")
	}
	var rec *Recorder
	if rec.Counter("a", "b") != nil || rec.Gauge("a", "b") != nil ||
		rec.Histogram("a", "b", nil) != nil || rec.Registry() != nil {
		t.Error("nil recorder must hand out nil handles")
	}
	rec.Event(KindPush, 1, 2, 3, 4, 5, 6, "x")
	rec.Manifest(Manifest{})
	rec.Phase("p")()
	if err := rec.Close(); err != nil {
		t.Errorf("nil recorder Close: %v", err)
	}
	if err := rec.WriteSummary(&strings.Builder{}); err != nil {
		t.Errorf("nil recorder WriteSummary: %v", err)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(9)
	g.Set(-3)
	if g.Value() != -3 {
		t.Errorf("gauge = %d, want -3", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	for _, v := range []float64{1, 10, 11, 99, 100.5, 1e9} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	// <=10: {1, 10}; <=100: {11, 99}; overflow: {100.5, 1e9}.
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("counts = %v, want [2 2 2]", counts)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
}

func TestHistogramInvalidBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {5, 5}, {9, 1}} {
		h := NewHistogram(bounds)
		h.Observe(3)
		if _, counts := h.Buckets(); len(counts) != 1 || counts[0] != 1 {
			t.Errorf("bounds %v: counts = %v, want single bucket [1]", bounds, counts)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("sim", "events")
	c2 := r.Counter("sim", "events")
	if c1 != c2 {
		t.Error("same-name counters are distinct")
	}
	if r.Gauge("k", "cached") != r.Gauge("k", "cached") {
		t.Error("same-name gauges are distinct")
	}
	h1 := r.Histogram("q", "delay", []float64{1, 2})
	h2 := r.Histogram("q", "delay", []float64{99}) // later bounds ignored
	if h1 != h2 {
		t.Error("same-name histograms are distinct")
	}
	if b, _ := h1.Buckets(); len(b) != 2 {
		t.Errorf("first-registration bounds lost: %v", b)
	}
	var nilReg *Registry
	if nilReg.Counter("a", "b") != nil {
		t.Error("nil registry must hand out nil handles")
	}
	if err := nilReg.WriteSummary(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WriteSummary: %v", err)
	}
}

func TestRegistrySummarySorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta", "z").Inc()
	r.Counter("alpha", "b").Add(2)
	r.Counter("alpha", "a").Add(3)
	r.Gauge("mid", "g").Set(4)
	r.Histogram("h", "d", []float64{10}).Observe(3)
	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"alpha/a", "alpha/b", "zeta/z", "mid/g", "h/d", "<=10:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "alpha/a") > strings.Index(out, "alpha/b") ||
		strings.Index(out, "alpha/b") > strings.Index(out, "zeta/z") {
		t.Errorf("counters not in (subsystem, name) order:\n%s", out)
	}
	// Determinism: a second read-out renders identical bytes.
	var sb2 strings.Builder
	if err := r.WriteSummary(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("summary not deterministic across read-outs")
	}
}

func TestRegistryWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("query", "issued").Add(7)
	r.Counter("query", "hits").Add(3)
	r.Gauge("knowledge", "cached").Set(-2)
	h := r.Histogram("query", "delay-sec", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# TYPE dtn_query_hits_total counter
dtn_query_hits_total 3
# TYPE dtn_query_issued_total counter
dtn_query_issued_total 7
# TYPE dtn_knowledge_cached gauge
dtn_knowledge_cached -2
# TYPE dtn_query_delay_sec histogram
dtn_query_delay_sec_bucket{le="1"} 1
dtn_query_delay_sec_bucket{le="10"} 2
dtn_query_delay_sec_bucket{le="+Inf"} 3
dtn_query_delay_sec_count 3
`
	if got != want {
		t.Errorf("WriteProm output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Byte-determinism regression: identical state renders identical
	// bytes on every read-out.
	var sb2 strings.Builder
	if err := r.WriteProm(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Error("WriteProm not deterministic across read-outs")
	}
	var nilReg *Registry
	if err := nilReg.WriteProm(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WriteProm: %v", err)
	}
}
