package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is usable; all methods are nil-safe so call sites can cache the
// (possibly nil) result of Recorder.Counter unconditionally and the
// disabled path stays a single branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//dtn:allocfree nil-safe increment on the per-event dispatch path
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//dtn:allocfree
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
//
//dtn:allocfree
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-latest integer metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the latest value.
//
//dtn:allocfree
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta — the in-flight/queue-depth usage,
// where concurrent enters and leaves would race a read-modify-Set.
//
//dtn:allocfree
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the latest value (0 on nil).
//
//dtn:allocfree
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket integer histogram: bounds are the upper
// edges of the first len(bounds) buckets, and one overflow bucket
// catches everything above the last bound. Counts are integers and
// bucket selection is a pure comparison walk, so histogram contents
// are deterministic at a fixed seed.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
}

// NewHistogram creates a histogram with the given ascending upper
// bounds. Invalid (empty or unsorted) bounds yield a single-bucket
// histogram.
func NewHistogram(bounds []float64) *Histogram {
	ok := len(bounds) > 0
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			ok = false
			break
		}
	}
	if !ok {
		bounds = nil
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(h.bounds)+1)
	return h
}

// Observe adds one sample: it lands in the first bucket whose upper
// bound is >= v, or the overflow bucket.
//
//dtn:allocfree fixed-bucket walk, no per-sample allocation
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
}

// Buckets returns the bucket upper bounds and the current counts
// (counts has one extra overflow slot).
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Total returns the number of observed samples.
func (h *Histogram) Total() uint64 {
	if h == nil {
		return 0
	}
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// metricKey addresses one metric inside a registry.
type metricKey struct {
	subsystem, name string
}

// Registry holds the metrics of one run keyed by (subsystem, name).
// Registration is idempotent — the first caller creates the metric,
// later callers get the same pointer — so independent subsystems can
// share counters (e.g. every node buffer increments one
// buffer/inserts). Lookups go through a map, but every read-out walks
// a sorted key slice, so summaries are deterministic.
type Registry struct {
	mu         sync.Mutex
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	histograms map[metricKey]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[metricKey]*Counter),
		gauges:     make(map[metricKey]*Gauge),
		histograms: make(map[metricKey]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(subsystem, name string) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{subsystem, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(subsystem, name string) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey{subsystem, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on
// first use (later bounds are ignored).
func (r *Registry) Histogram(subsystem, name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{subsystem, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[k]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[k] = h
	}
	return h
}

// sortedKeys returns the keys of a metric map in (subsystem, name)
// order, the deterministic read-out order of every summary.
func sortedKeys[V any](m map[metricKey]V) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].subsystem != keys[j].subsystem {
			return keys[i].subsystem < keys[j].subsystem
		}
		return keys[i].name < keys[j].name
	})
	return keys
}

// promName renders a metric key as a Prometheus metric name:
// dtn_<subsystem>_<name> with every character outside [a-zA-Z0-9_]
// mapped to '_'.
func promName(k metricKey) string {
	var sb strings.Builder
	sb.WriteString("dtn_")
	for _, s := range []string{k.subsystem, "_", k.name} {
		for _, c := range s {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
				c >= '0' && c <= '9', c == '_':
				sb.WriteRune(c)
			default:
				sb.WriteByte('_')
			}
		}
	}
	return sb.String()
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format, sorted by (subsystem, name) within each metric
// type — the byte-deterministic /metrics endpoint of dtnserved. Two
// calls against the same metric state produce identical bytes.
// Counters become <name>_total, histograms emit cumulative le buckets
// plus a _count series (no _sum: buckets count integer events whose
// magnitudes the registry does not retain). Nil-safe.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeys(r.counters) {
		name := promName(k) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.counters[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.gauges) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.histograms) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		bounds, counts := r.histograms[k].Buckets()
		var cum uint64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(bounds) {
				le = fmt.Sprintf("%g", bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, cum); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders every registered metric, grouped by type and
// sorted by (subsystem, name). Nil-safe.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		if _, err := fmt.Fprintln(w, "counters:"); err != nil {
			return err
		}
		for _, k := range sortedKeys(r.counters) {
			if _, err := fmt.Fprintf(w, "  %-32s %d\n", k.subsystem+"/"+k.name, r.counters[k].Value()); err != nil {
				return err
			}
		}
	}
	if len(r.gauges) > 0 {
		if _, err := fmt.Fprintln(w, "gauges:"); err != nil {
			return err
		}
		for _, k := range sortedKeys(r.gauges) {
			if _, err := fmt.Fprintf(w, "  %-32s %d\n", k.subsystem+"/"+k.name, r.gauges[k].Value()); err != nil {
				return err
			}
		}
	}
	if len(r.histograms) > 0 {
		if _, err := fmt.Fprintln(w, "histograms:"); err != nil {
			return err
		}
		for _, k := range sortedKeys(r.histograms) {
			bounds, counts := r.histograms[k].Buckets()
			var sb strings.Builder
			for i, c := range counts {
				if i > 0 {
					sb.WriteString("  ")
				}
				if i < len(bounds) {
					fmt.Fprintf(&sb, "<=%g:%d", bounds[i], c)
				} else {
					fmt.Fprintf(&sb, ">:%d", c)
				}
			}
			if _, err := fmt.Fprintf(w, "  %-32s %s\n", k.subsystem+"/"+k.name, sb.String()); err != nil {
				return err
			}
		}
	}
	return nil
}
