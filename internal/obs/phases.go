package obs

import (
	"fmt"
	"io"
	"sync"
)

// Phases accumulates named wall-clock spans: the coarse stages of a
// run (trace load, knowledge build, replay, report). The clock is
// injected as a nanosecond function by the CLI layer — this package
// (and everything under the determinism lint) never reads the wall
// clock itself, and span timings never enter the trace sink.
//
// Spans of the same name accumulate (count + total), so a phase that
// recurs — every incremental knowledge build, every sweep cell — reads
// out as one aggregate line. Phases is safe for concurrent use.
type Phases struct {
	clock func() int64 // nanoseconds; monotonic origin is irrelevant

	mu    sync.Mutex
	order []string // first-start order, the deterministic read-out order
	total map[string]int64
	count map[string]int
	open  map[string]int // re-entrancy depth, to reject nested double-count
}

// NewPhases creates a phase-timer set over the given nanosecond clock
// (e.g. func() int64 { return time.Now().UnixNano() } at the CLI
// layer). A nil clock yields zero-duration spans, which keeps Phases
// usable in tests without a clock.
func NewPhases(clock func() int64) *Phases {
	return &Phases{
		clock: clock,
		total: make(map[string]int64),
		count: make(map[string]int),
		open:  make(map[string]int),
	}
}

// now reads the injected clock (0 without one).
func (p *Phases) now() int64 {
	if p.clock == nil {
		return 0
	}
	return p.clock()
}

// Start opens a span and returns its closer. Closing twice is a no-op.
// Nil-safe: a nil Phases returns a no-op closer.
func (p *Phases) Start(name string) func() {
	if p == nil {
		return func() {}
	}
	start := p.now()
	p.register(name)
	closed := false
	return func() {
		if closed {
			return
		}
		closed = true
		p.Add(name, p.now()-start)
	}
}

// register notes the first appearance of a phase name, fixing its
// position in the summary order.
func (p *Phases) register(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.count[name]; !ok && p.open[name] == 0 {
		p.order = append(p.order, name)
	}
	p.open[name]++
}

// Add accumulates one finished span of the named phase. It may be
// called directly with externally measured durations (the
// cmd/experiments -progress path). Nil-safe.
func (p *Phases) Add(name string, durNs int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.count[name]; !ok && p.open[name] == 0 {
		p.order = append(p.order, name)
	}
	if p.open[name] > 0 {
		p.open[name]--
	}
	p.total[name] += durNs
	p.count[name]++
}

// Totals returns each phase's accumulated duration in nanoseconds and
// its span count, in first-start order.
func (p *Phases) Totals() (names []string, totalNs []int64, counts []int) {
	if p == nil {
		return nil, nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	names = append([]string(nil), p.order...)
	totalNs = make([]int64, len(names))
	counts = make([]int, len(names))
	for i, n := range names {
		totalNs[i] = p.total[n]
		counts[i] = p.count[n]
	}
	return names, totalNs, counts
}

// WriteSummary renders the accumulated phases as aligned text lines.
func (p *Phases) WriteSummary(w io.Writer) error {
	if p == nil {
		return nil
	}
	names, totals, counts := p.Totals()
	if len(names) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "phases:"); err != nil {
		return err
	}
	for i, n := range names {
		if _, err := fmt.Fprintf(w, "  %-32s %10.3fms  (%d span(s))\n",
			n, float64(totals[i])/1e6, counts[i]); err != nil {
			return err
		}
	}
	return nil
}
