package obs

import (
	"fmt"
	"hash/fnv"
	"io"
	"os/exec"
	"runtime"
	"strings"
)

// Manifest pins the provenance of one run: what was simulated (trace,
// scheme, seed, a digest of the full configuration) and on what (go
// version, GOMAXPROCS, git describe). It is stamped as the first line
// of every recorded trace, onto dtnsim's JSON report and onto
// benchjson output, so recorded artifacts stay comparable across PRs
// and machines. Every field is stable across repeated runs on one
// checkout, preserving trace byte-identity.
//
//dtn:immutable stamped once by NewManifest, then serialized verbatim
type Manifest struct {
	// Trace names the contact trace (preset name or file path).
	Trace string `json:"trace,omitempty"`
	// Scheme names the data access scheme under evaluation.
	Scheme string `json:"scheme,omitempty"`
	// Seed is the run's random seed.
	Seed int64 `json:"seed"`
	// ConfigDigest is the FNV-1a hash (hex) of the full scalar
	// configuration, so two runs with the same digest really ran the
	// same parameters.
	ConfigDigest string `json:"config_digest,omitempty"`
	// GoVersion and GoMaxProcs pin the toolchain and parallelism.
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// GitDescribe pins the source revision (best effort; empty when git
	// or the repository is unavailable).
	GitDescribe string `json:"git_describe,omitempty"`
}

// NewManifest fills the environment fields and digests config —
// any value whose fmt "%+v" rendering is pointer-free and
// deterministic (flag structs of scalars, formatted strings). Pass nil
// config for no digest.
func NewManifest(traceName, schemeName string, seed int64, config any) Manifest {
	m := Manifest{
		Trace:       traceName,
		Scheme:      schemeName,
		Seed:        seed,
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GitDescribe: GitDescribe(),
	}
	if config != nil {
		m.ConfigDigest = ConfigDigest(config)
	}
	return m
}

// ConfigDigest renders v with %+v and returns the FNV-1a 64-bit hash
// as hex. Callers must pass pointer-free values (struct copies of
// scalars), or the digest would embed addresses and lose run-to-run
// stability.
func ConfigDigest(v any) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", v)
	return fmt.Sprintf("%016x", h.Sum64())
}

// GitDescribe returns `git describe --always --dirty` for the current
// working directory, or "" when unavailable. The subprocess result is
// stable for a fixed checkout, so it cannot break trace byte-identity.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// AppendJSON appends the manifest's NDJSON header line (no trailing
// newline) — the same bytes Recorder.Manifest writes to its sink,
// exported so flight-recorder dumps can prepend the manifest without
// routing it through the ring.
func (m Manifest) AppendJSON(b []byte) []byte { return appendManifest(b, m) }

// WriteSummary renders the manifest as aligned text lines (the
// -obs-summary header).
func (m Manifest) WriteSummary(w io.Writer) error {
	_, err := fmt.Fprintf(w, "manifest:\n  trace=%s scheme=%s seed=%d digest=%s\n  %s gomaxprocs=%d git=%s\n",
		m.Trace, m.Scheme, m.Seed, m.ConfigDigest, m.GoVersion, m.GoMaxProcs, m.GitDescribe)
	return err
}
