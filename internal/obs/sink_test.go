package obs

import (
	"strings"
	"sync"
	"testing"
)

// closeBuffer records whether Close reached the underlying writer.
type closeBuffer struct {
	strings.Builder
	closed bool
}

func (c *closeBuffer) Close() error {
	c.closed = true
	return nil
}

func TestStreamSink(t *testing.T) {
	var cb closeBuffer
	s := NewStreamSink(&cb)
	s.WriteLine([]byte(`{"k":"a"}`))
	s.WriteLine([]byte(`{"k":"b"}`))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := cb.String(); got != "{\"k\":\"a\"}\n{\"k\":\"b\"}\n" {
		t.Errorf("stream wrote %q", got)
	}
	if !cb.closed {
		t.Error("underlying closer not closed")
	}
}

func TestRingSinkWrapAndDump(t *testing.T) {
	r := NewRingSink(3)
	for _, l := range []string{"1", "2", "3", "4", "5"} {
		r.WriteLine([]byte(l))
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "3\n4\n5\n" {
		t.Errorf("dump = %q, want oldest-first tail 3..5", sb.String())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRingSinkUnderfilled(t *testing.T) {
	r := NewRingSink(8)
	r.WriteLine([]byte("only"))
	if r.Len() != 1 || r.Dropped() != 0 {
		t.Errorf("len=%d dropped=%d, want 1/0", r.Len(), r.Dropped())
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "only\n" {
		t.Errorf("dump = %q", sb.String())
	}
	// n < 1 clamps to a 1-slot ring.
	tiny := NewRingSink(0)
	tiny.WriteLine([]byte("a"))
	tiny.WriteLine([]byte("b"))
	if tiny.Len() != 1 {
		t.Errorf("clamped ring len = %d, want 1", tiny.Len())
	}
}

func TestRingSinkDoesNotRetainCallerSlice(t *testing.T) {
	// The Sink contract: WriteLine must not retain the slice, because
	// the recorder reuses its encode buffer.
	r := NewRingSink(2)
	buf := []byte("first")
	r.WriteLine(buf)
	copy(buf, "XXXXX") // recorder reusing its scratch
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "first\n" {
		t.Errorf("ring retained the caller's slice: dump = %q", sb.String())
	}
}

func TestSampleSinkKeepsFirstLine(t *testing.T) {
	var cb closeBuffer
	s := NewSampleSink(NewStreamSink(&cb), 3)
	for _, l := range []string{"manifest", "e1", "e2", "e3", "e4", "e5"} {
		s.WriteLine([]byte(l))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Every 3rd starting at line 0: manifest, e3. The manifest (first
	// line) is always kept.
	if cb.String() != "manifest\ne3\n" {
		t.Errorf("sampled = %q, want manifest+e3", cb.String())
	}
	if !cb.closed {
		t.Error("sample sink Close did not propagate")
	}
	// every < 1 clamps to pass-through.
	pass := NewSampleSink(NewRingSink(4), 0)
	pass.WriteLine([]byte("x"))
	pass.WriteLine([]byte("y"))
}

// TestSyncSinkSerializes hammers one SyncSink from eight goroutines to
// prove the mutex keeps whole lines intact.
//
//dtn:workerpool WaitGroup-joined concurrency hammer
func TestSyncSinkSerializes(t *testing.T) {
	ring := NewRingSink(1000)
	s := NewSyncSink(ring)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.WriteLine([]byte("line"))
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 800 {
		t.Errorf("ring kept %d lines, want 800", ring.Len())
	}
}
