package obs

import (
	"strconv"
	"unicode/utf8"
)

// The trace encoding is hand-rolled NDJSON: every event is one JSON
// object on one line with fixed key order and shortest-round-trip
// float formatting, so a recorded trace is a pure function of the
// event stream — byte-identical across runs at a fixed seed. Field
// omission is value-driven (negative node/ID fields, zero aux/v, empty
// label are left out) and therefore deterministic too.

// appendFloat appends the shortest decimal that round-trips the value.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendQuoted appends s as a JSON string literal. Unlike
// strconv.AppendQuote (whose \xNN escapes are not JSON), control
// characters become \u00NN and invalid UTF-8 the replacement rune, so
// any label encodes to valid JSON (asserted by FuzzEncodeEvent).
func appendQuoted(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"':
			b = append(b, '\\', '"')
		case r == '\\':
			b = append(b, '\\', '\\')
		case r < 0x20:
			b = append(b, '\\', 'u', '0', '0', hex[r>>4], hex[r&0xf])
		default:
			b = utf8.AppendRune(b, r)
		}
	}
	return append(b, '"')
}

// appendEvent encodes one event as a JSON object (no trailing
// newline).
func appendEvent(b []byte, k Kind, t float64, a, bb int32, id, aux int64, v float64, label string) []byte {
	b = append(b, `{"k":"`...)
	b = append(b, k.String()...)
	b = append(b, `","t":`...)
	b = appendFloat(b, t)
	if a >= 0 {
		b = append(b, `,"a":`...)
		b = strconv.AppendInt(b, int64(a), 10)
	}
	if bb >= 0 {
		b = append(b, `,"b":`...)
		b = strconv.AppendInt(b, int64(bb), 10)
	}
	if id >= 0 {
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, id, 10)
	}
	if aux != 0 {
		b = append(b, `,"x":`...)
		b = strconv.AppendInt(b, aux, 10)
	}
	if v != 0 {
		b = append(b, `,"v":`...)
		b = appendFloat(b, v)
	}
	if label != "" {
		b = append(b, `,"s":`...)
		b = appendQuoted(b, label)
	}
	return append(b, '}')
}

// appendSpan encodes one provenance span as a JSON object (no trailing
// newline). Key order is fixed; omission is value-driven like
// appendEvent: nq is left out when it equals t, pa when negative
// (root), a/b when negative, x/v when zero. The query ID is always
// present — a span without its query is meaningless.
func appendSpan(b []byte, ev SpanEvent) []byte {
	b = append(b, `{"k":"span","t":`...)
	b = appendFloat(b, ev.Start)
	b = append(b, `,"e":`...)
	b = appendFloat(b, ev.End)
	if ev.Enq != ev.Start {
		b = append(b, `,"nq":`...)
		b = appendFloat(b, ev.Enq)
	}
	b = append(b, `,"tr":"`...)
	b = appendHex16(b, ev.Trace)
	b = append(b, `","sp":`...)
	b = strconv.AppendInt(b, ev.ID, 10)
	if ev.Parent >= 0 {
		b = append(b, `,"pa":`...)
		b = strconv.AppendInt(b, ev.Parent, 10)
	}
	b = append(b, `,"op":`...)
	b = appendQuoted(b, ev.Op)
	if ev.A >= 0 {
		b = append(b, `,"a":`...)
		b = strconv.AppendInt(b, int64(ev.A), 10)
	}
	if ev.B >= 0 {
		b = append(b, `,"b":`...)
		b = strconv.AppendInt(b, int64(ev.B), 10)
	}
	b = append(b, `,"id":`...)
	b = strconv.AppendInt(b, ev.Query, 10)
	if ev.Aux != 0 {
		b = append(b, `,"x":`...)
		b = strconv.AppendInt(b, ev.Aux, 10)
	}
	if ev.V != 0 {
		b = append(b, `,"v":`...)
		b = appendFloat(b, ev.V)
	}
	return append(b, '}')
}

// appendHex16 appends v as exactly 16 lowercase hex digits — the fixed
// width keeps trace IDs grep-able and the encoding length-stable.
func appendHex16(b []byte, v uint64) []byte {
	const hex = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, hex[(v>>uint(shift))&0xf])
	}
	return b
}

// appendManifest encodes the run-manifest header line.
func appendManifest(b []byte, m Manifest) []byte {
	b = append(b, `{"k":"manifest"`...)
	appendStr := func(key, val string) {
		if val == "" {
			return
		}
		b = append(b, `,"`...)
		b = append(b, key...)
		b = append(b, `":`...)
		b = appendQuoted(b, val)
	}
	appendStr("trace", m.Trace)
	appendStr("scheme", m.Scheme)
	b = append(b, `,"seed":`...)
	b = strconv.AppendInt(b, m.Seed, 10)
	appendStr("config_digest", m.ConfigDigest)
	appendStr("go_version", m.GoVersion)
	b = append(b, `,"gomaxprocs":`...)
	b = strconv.AppendInt(b, int64(m.GoMaxProcs), 10)
	appendStr("git_describe", m.GitDescribe)
	return append(b, '}')
}
