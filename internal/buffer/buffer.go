// Package buffer implements per-node caching buffers with the popularity
// bookkeeping of paper Eqs. (5)-(6) and the classic replacement policies
// the evaluation compares against (FIFO, LRU, Greedy-Dual-Size). The
// paper's own utility/knapsack replacement lives in internal/core and
// drives this package's primitive operations.
//
//dtn:determinism
package buffer

import (
	"errors"
	"math"

	"dtncache/internal/obs"
	"dtncache/internal/workload"
)

// RequestStats tracks the occurrences of past requests to one data item,
// as seen by one caching node. Per Sec. V-D.1 a node only needs the
// request count and the first/last request times to estimate the Poisson
// request rate lambda_d = k / (t_k - t_1).
type RequestStats struct {
	Count       int
	First, Last float64
}

// Observe records a request at time t.
func (rs *RequestStats) Observe(t float64) {
	if rs.Count == 0 {
		rs.First = t
	}
	rs.Count++
	if t > rs.Last {
		rs.Last = t
	}
}

// Merge folds another node's view of the same item's request history into
// this one (used when caching nodes exchange query-history information on
// contact). Counts add; the window extends to the union.
func (rs *RequestStats) Merge(other RequestStats) {
	if other.Count == 0 {
		return
	}
	if rs.Count == 0 {
		*rs = other
		return
	}
	rs.Count += other.Count
	if other.First < rs.First {
		rs.First = other.First
	}
	if other.Last > rs.Last {
		rs.Last = other.Last
	}
}

// Rate returns the estimated Poisson request rate lambda_d (Eq. 5). With
// fewer than two requests the window is degenerate; a single request
// contributes a weak rate estimate of one request per elapsed-since-first
// interval measured at now.
func (rs *RequestStats) Rate(now float64) float64 {
	switch {
	case rs.Count == 0:
		return 0
	case rs.Count == 1 || rs.Last <= rs.First:
		elapsed := now - rs.First
		if elapsed <= 0 {
			return 0
		}
		return 1 / elapsed
	default:
		return float64(rs.Count) / (rs.Last - rs.First)
	}
}

// Popularity returns w_i of Eq. (6): the probability the item is
// requested at least once more before it expires. The paper's prose
// defines this over the remaining lifetime, so we use
// 1 - exp(-lambda_d * (expires - now)); set fromFirst to use the
// literal (t_e - t_1) variant of the OCR'd equation instead (kept for
// the ablation study).
func (rs *RequestStats) Popularity(now, expires float64, fromFirst bool) float64 {
	rate := rs.Rate(now)
	if rate == 0 {
		return 0
	}
	window := expires - now
	if fromFirst {
		window = expires - rs.First
	}
	if window <= 0 {
		return 0
	}
	return -math.Expm1(-rate * window)
}

// Entry is one cached data copy plus its bookkeeping.
type Entry struct {
	Data workload.DataItem
	// CachedAt is when this node cached the copy.
	CachedAt float64
	// LastUsed is the last time the entry served or matched a query
	// (LRU bookkeeping).
	LastUsed float64
	// Seq is the insertion sequence number (FIFO bookkeeping).
	Seq int
	// Cost is the Greedy-Dual-Size H value.
	Cost float64
	// Requests is the locally known request history (popularity).
	Requests RequestStats
	// Home is the NCL (central node index) this copy is associated with,
	// or -1. Used by the intentional caching scheme to track which NCL's
	// subgraph the copy belongs to.
	Home int
	// InTransit marks a copy still being pushed toward its NCL's central
	// node — a "temporal caching location" in the paper's terms
	// (Sec. V-A). In-transit copies do not take part in cache
	// replacement.
	InTransit bool
}

// Buffer is a single node's caching buffer. It never evicts on its own:
// Put fails when there is not enough free space, and callers decide what
// to remove (directly or via a Policy).
//
// Entries are kept in a slice sorted by ascending data ID: lookups are
// binary searches and Entries() hands out the slice itself, so the
// per-contact iteration over a node's cache — the hottest read in every
// scheme — costs no allocation and no re-sort (DataIDs are dense small
// integers, so the slice stays short and cache-resident).
type Buffer struct {
	capacity float64
	used     float64
	entries  []*Entry // sorted by ascending Data.ID
	seq      int

	evictions int
	inserts   int

	// Shared fleet-wide counters: every node buffer registered against
	// the same recorder increments one buffer/inserts and one
	// buffer/evictions (registration is idempotent). Nil when
	// observability is off.
	cInserts   *obs.Counter
	cEvictions *obs.Counter
}

// New creates a buffer with the given capacity in bits.
func New(capacityBits float64) *Buffer {
	return &Buffer{capacity: capacityBits}
}

// Errors returned by Put.
var (
	ErrTooLarge  = errors.New("buffer: item exceeds total capacity")
	ErrNoSpace   = errors.New("buffer: not enough free space")
	ErrDuplicate = errors.New("buffer: item already cached")
)

// SetRecorder attaches the shared buffer/inserts and buffer/evictions
// counters; nil detaches them.
func (b *Buffer) SetRecorder(r *obs.Recorder) {
	if r == nil {
		b.cInserts, b.cEvictions = nil, nil
		return
	}
	b.cInserts = r.Counter("buffer", "inserts")
	b.cEvictions = r.Counter("buffer", "evictions")
}

// Capacity returns the total capacity in bits.
func (b *Buffer) Capacity() float64 { return b.capacity }

// Used returns the occupied space in bits.
func (b *Buffer) Used() float64 { return b.used }

// Free returns the available space in bits.
func (b *Buffer) Free() float64 { return b.capacity - b.used }

// Len returns the number of cached entries.
func (b *Buffer) Len() int { return len(b.entries) }

// search returns the insertion index for id in the sorted entry slice.
//
//dtn:allocfree hand-rolled binary search, no sort.Search closure
func (b *Buffer) search(id workload.DataID) int {
	lo, hi := 0, len(b.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.entries[mid].Data.ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Has reports whether the item is cached.
//
//dtn:allocfree
func (b *Buffer) Has(id workload.DataID) bool {
	return b.Get(id) != nil
}

// Get returns the entry for id, or nil.
//
//dtn:allocfree slice-backed store lookup on the scheme hot path
func (b *Buffer) Get(id workload.DataID) *Entry {
	if i := b.search(id); i < len(b.entries) && b.entries[i].Data.ID == id {
		return b.entries[i]
	}
	return nil
}

// Stats returns cumulative insert and eviction counts.
func (b *Buffer) Stats() (inserts, evictions int) {
	return b.inserts, b.evictions
}

// Put caches the item at time now. It fails with ErrNoSpace (or
// ErrTooLarge / ErrDuplicate) rather than evicting.
func (b *Buffer) Put(item workload.DataItem, now float64) (*Entry, error) {
	if item.SizeBits > b.capacity {
		return nil, ErrTooLarge
	}
	i := b.search(item.ID)
	if i < len(b.entries) && b.entries[i].Data.ID == item.ID {
		return nil, ErrDuplicate
	}
	if item.SizeBits > b.Free() {
		return nil, ErrNoSpace
	}
	b.seq++
	e := &Entry{
		Data:     item,
		CachedAt: now,
		LastUsed: now,
		Seq:      b.seq,
		Home:     -1,
	}
	b.entries = append(b.entries, nil)
	copy(b.entries[i+1:], b.entries[i:])
	b.entries[i] = e
	b.used += item.SizeBits
	b.inserts++
	b.cInserts.Inc()
	return e, nil
}

// Remove evicts the item, returning its entry (nil if absent).
func (b *Buffer) Remove(id workload.DataID) *Entry {
	i := b.search(id)
	if i >= len(b.entries) || b.entries[i].Data.ID != id {
		return nil
	}
	e := b.entries[i]
	n := len(b.entries) - 1
	copy(b.entries[i:], b.entries[i+1:])
	b.entries[n] = nil
	b.entries = b.entries[:n]
	b.used -= e.Data.SizeBits
	b.evictions++
	b.cEvictions.Inc()
	return e
}

// Entries returns all entries sorted by ascending data ID (deterministic
// iteration order for protocols and tests). The returned slice is the
// buffer's internal store: callers must treat it as read-only and copy
// it before reordering (see Policy.Victims), and must not Put/Remove
// other IDs while iterating. Removing the current entry is safe only
// through Remove-after-iteration patterns that re-read Entries.
func (b *Buffer) Entries() []*Entry {
	return b.entries
}

// Wipe removes every entry at once — a node crash losing its cached
// copies — and returns them in ascending ID order. Each lost copy
// counts as an eviction, so insert/eviction bookkeeping stays balanced
// across a wipe/refill cycle.
func (b *Buffer) Wipe() []*Entry {
	if len(b.entries) == 0 {
		return nil
	}
	wiped := make([]*Entry, len(b.entries))
	copy(wiped, b.entries)
	for i := range b.entries {
		b.entries[i] = nil
	}
	b.entries = b.entries[:0]
	b.used = 0
	b.evictions += len(wiped)
	b.cEvictions.Add(uint64(len(wiped)))
	return wiped
}

// DropExpired removes all entries expired at now and returns them, in
// ascending ID order. The store is compacted in place.
func (b *Buffer) DropExpired(now float64) []*Entry {
	var dropped []*Entry
	kept := b.entries[:0]
	for _, e := range b.entries {
		if e.Data.Expired(now) {
			b.used -= e.Data.SizeBits
			b.evictions++
			b.cEvictions.Inc()
			dropped = append(dropped, e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(b.entries); i++ {
		b.entries[i] = nil
	}
	b.entries = kept
	return dropped
}
