package buffer

import (
	"testing"
)

func TestFIFOEvictsOldestInsert(t *testing.T) {
	b := New(100)
	p := FIFO{}
	PutEvict(b, p, item(1, 40, 0, 1e9), 0)
	PutEvict(b, p, item(2, 40, 0, 1e9), 10)
	// Touch item 1 (must not matter for FIFO).
	p.OnHit(b, b.Get(1), 20)
	evicted, ok := PutEvict(b, p, item(3, 40, 0, 1e9), 30)
	if !ok {
		t.Fatal("insert failed")
	}
	if len(evicted) != 1 || evicted[0].Data.ID != 1 {
		t.Errorf("evicted = %v, want item 1", evicted)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	b := New(100)
	p := LRU{}
	PutEvict(b, p, item(1, 40, 0, 1e9), 0)
	PutEvict(b, p, item(2, 40, 0, 1e9), 10)
	p.OnHit(b, b.Get(1), 20) // 1 is now more recent than 2
	evicted, ok := PutEvict(b, p, item(3, 40, 0, 1e9), 30)
	if !ok {
		t.Fatal("insert failed")
	}
	if len(evicted) != 1 || evicted[0].Data.ID != 2 {
		t.Errorf("evicted = %v, want item 2", evicted)
	}
}

func TestGDSPrefersEvictingLargeItems(t *testing.T) {
	b := New(200e6)
	p := &GreedyDualSize{}
	PutEvict(b, p, item(1, 100e6, 0, 1e9), 0) // large: H = 1/100
	PutEvict(b, p, item(2, 10e6, 0, 1e9), 0)  // small: H = 1/10
	evicted, ok := PutEvict(b, p, item(3, 150e6, 0, 1e9), 10)
	if !ok {
		t.Fatal("insert failed")
	}
	if len(evicted) < 1 || evicted[0].Data.ID != 1 {
		t.Errorf("evicted = %v, want the large item first", evicted)
	}
}

func TestGDSInflationAges(t *testing.T) {
	p := &GreedyDualSize{}
	b := New(100e6)
	PutEvict(b, p, item(1, 100e6, 0, 1e9), 0)
	PutEvict(b, p, item(2, 100e6, 0, 1e9), 1) // evicts 1, L rises to 1/100
	if p.L <= 0 {
		t.Errorf("L = %v, want > 0 after eviction", p.L)
	}
	e2 := b.Get(2)
	if e2 == nil {
		t.Fatal("item 2 not cached")
	}
	// A hit should refresh the entry's H at the new inflation level.
	old := e2.Cost
	p.OnEvict(b, &Entry{Cost: 5}, 0) // force L up
	p.OnHit(b, e2, 2)
	if e2.Cost <= old {
		t.Errorf("hit did not refresh cost: %v -> %v", old, e2.Cost)
	}
}

func TestPutEvictMultipleVictims(t *testing.T) {
	b := New(100)
	p := FIFO{}
	PutEvict(b, p, item(1, 30, 0, 1e9), 0)
	PutEvict(b, p, item(2, 30, 0, 1e9), 1)
	PutEvict(b, p, item(3, 30, 0, 1e9), 2)
	evicted, ok := PutEvict(b, p, item(4, 80, 0, 1e9), 3)
	if !ok {
		t.Fatal("insert failed")
	}
	if len(evicted) != 3 {
		t.Errorf("evicted %d items, want 3", len(evicted))
	}
	if !b.Has(4) || b.Len() != 1 {
		t.Error("final state wrong")
	}
}

func TestPutEvictRejectsOversizeAndDuplicate(t *testing.T) {
	b := New(100)
	p := LRU{}
	if _, ok := PutEvict(b, p, item(1, 200, 0, 1e9), 0); ok {
		t.Error("oversize item accepted")
	}
	PutEvict(b, p, item(2, 50, 0, 1e9), 0)
	if _, ok := PutEvict(b, p, item(2, 50, 0, 1e9), 1); ok {
		t.Error("duplicate accepted")
	}
	if b.Len() != 1 {
		t.Error("buffer disturbed by rejected inserts")
	}
}

func TestPolicyNames(t *testing.T) {
	if (FIFO{}).Name() != "FIFO" {
		t.Error("FIFO name")
	}
	if (LRU{}).Name() != "LRU" {
		t.Error("LRU name")
	}
	if (&GreedyDualSize{}).Name() != "GDS" {
		t.Error("GDS name")
	}
}

func TestPutEvictExactFit(t *testing.T) {
	b := New(100)
	p := LRU{}
	PutEvict(b, p, item(1, 100, 0, 1e9), 0)
	evicted, ok := PutEvict(b, p, item(2, 100, 0, 1e9), 1)
	if !ok || len(evicted) != 1 {
		t.Errorf("exact-fit replacement failed: ok=%v evicted=%v", ok, evicted)
	}
}
