package buffer

import (
	"sort"

	"dtncache/internal/workload"
)

// Policy ranks eviction victims when an insertion needs space. Evict
// returns cached entries in eviction order (most evictable first);
// PutEvict removes them one at a time until the new item fits.
type Policy interface {
	// Name identifies the policy in reports ("FIFO", "LRU", ...).
	Name() string
	// Victims returns b's entries ordered most-evictable-first.
	Victims(b *Buffer, now float64) []*Entry
	// OnInsert lets the policy initialize per-entry state (GDS cost).
	OnInsert(b *Buffer, e *Entry, now float64)
	// OnHit lets the policy update per-entry state when the entry serves
	// a query.
	OnHit(b *Buffer, e *Entry, now float64)
	// OnEvict lets the policy observe an eviction (GDS aging).
	OnEvict(b *Buffer, e *Entry, now float64)
}

// PutEvict inserts the item, evicting policy-chosen victims as needed.
// It returns the evicted entries and whether the insert succeeded. The
// insert fails (with no evictions) if the item exceeds total capacity,
// is a duplicate, or — by design, mirroring all the paper's schemes —
// if freeing space would require evicting items whose combined "keep
// more than the incoming one" judgement belongs to the policy: here any
// victim is fair game, so failure only happens on capacity/duplicates.
func PutEvict(b *Buffer, p Policy, item workload.DataItem, now float64) ([]*Entry, bool) {
	if item.SizeBits > b.Capacity() || b.Has(item.ID) {
		return nil, false
	}
	var evicted []*Entry
	if item.SizeBits > b.Free() {
		victims := p.Victims(b, now)
		for _, v := range victims {
			if item.SizeBits <= b.Free() {
				break
			}
			b.Remove(v.Data.ID)
			p.OnEvict(b, v, now)
			evicted = append(evicted, v)
		}
	}
	e, err := b.Put(item, now)
	if err != nil {
		return evicted, false
	}
	p.OnInsert(b, e, now)
	return evicted, true
}

// FIFO evicts the oldest-inserted entry first.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// Victims implements Policy.
func (FIFO) Victims(b *Buffer, _ float64) []*Entry {
	es := copyEntries(b)
	sort.Slice(es, func(i, j int) bool { return es[i].Seq < es[j].Seq })
	return es
}

// copyEntries snapshots the buffer's (read-only, ID-sorted) entry slice
// so a policy can reorder it by its own criterion.
func copyEntries(b *Buffer) []*Entry {
	return append([]*Entry(nil), b.Entries()...)
}

// OnInsert implements Policy.
func (FIFO) OnInsert(*Buffer, *Entry, float64) {}

// OnHit implements Policy.
func (FIFO) OnHit(*Buffer, *Entry, float64) {}

// OnEvict implements Policy.
func (FIFO) OnEvict(*Buffer, *Entry, float64) {}

// LRU evicts the least-recently-used entry first.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// Victims implements Policy.
func (LRU) Victims(b *Buffer, _ float64) []*Entry {
	es := copyEntries(b)
	sort.Slice(es, func(i, j int) bool {
		if es[i].LastUsed != es[j].LastUsed {
			return es[i].LastUsed < es[j].LastUsed
		}
		return es[i].Seq < es[j].Seq
	})
	return es
}

// OnInsert implements Policy.
func (LRU) OnInsert(_ *Buffer, e *Entry, now float64) { e.LastUsed = now }

// OnHit implements Policy.
func (LRU) OnHit(_ *Buffer, e *Entry, now float64) { e.LastUsed = now }

// OnEvict implements Policy.
func (LRU) OnEvict(*Buffer, *Entry, float64) {}

// GreedyDualSize is the Greedy-Dual-Size policy of Cao & Irani, the web
// caching baseline of Sec. V-D / Fig. 12: each entry carries
// H = L + cost/size; the minimum-H entry is evicted and its H becomes
// the new inflation level L. Cost is uniform (1), so larger items are
// more evictable, and hits restore an entry's H.
type GreedyDualSize struct {
	// L is the inflation level; the zero value is ready to use.
	L float64
}

// Name implements Policy.
func (*GreedyDualSize) Name() string { return "GDS" }

// gdsH computes the H value for an entry at the current inflation level.
func (g *GreedyDualSize) gdsH(e *Entry) float64 {
	// Sizes are bits and costs are uniform; normalize by megabit so the
	// cost/size term stays on a sane scale next to L.
	return g.L + 1/(e.Data.SizeBits/1e6)
}

// Victims implements Policy.
func (g *GreedyDualSize) Victims(b *Buffer, _ float64) []*Entry {
	es := copyEntries(b)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Cost != es[j].Cost {
			return es[i].Cost < es[j].Cost
		}
		return es[i].Seq < es[j].Seq
	})
	return es
}

// OnInsert implements Policy.
func (g *GreedyDualSize) OnInsert(_ *Buffer, e *Entry, _ float64) { e.Cost = g.gdsH(e) }

// OnHit implements Policy.
func (g *GreedyDualSize) OnHit(_ *Buffer, e *Entry, _ float64) { e.Cost = g.gdsH(e) }

// OnEvict implements Policy.
func (g *GreedyDualSize) OnEvict(_ *Buffer, e *Entry, _ float64) {
	if e.Cost > g.L {
		g.L = e.Cost
	}
}

// Compile-time interface checks.
var (
	_ Policy = FIFO{}
	_ Policy = LRU{}
	_ Policy = (*GreedyDualSize)(nil)
)
