package buffer

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dtncache/internal/workload"
)

func item(id int, size float64, created, expires float64) workload.DataItem {
	return workload.DataItem{
		ID: workload.DataID(id), Source: 0,
		SizeBits: size, Created: created, Expires: expires,
	}
}

func TestRequestStatsObserve(t *testing.T) {
	var rs RequestStats
	if rs.Rate(100) != 0 {
		t.Error("empty stats should have zero rate")
	}
	rs.Observe(10)
	if rs.Count != 1 || rs.First != 10 || rs.Last != 10 {
		t.Errorf("after one observation: %+v", rs)
	}
	// Single request: weak estimate 1/(now-first).
	if got := rs.Rate(30); math.Abs(got-1.0/20) > 1e-12 {
		t.Errorf("single-request rate = %v, want 0.05", got)
	}
	rs.Observe(20)
	rs.Observe(30)
	// Eq. (5): lambda = k/(t_k - t_1) = 3/20.
	if got := rs.Rate(100); math.Abs(got-3.0/20) > 1e-12 {
		t.Errorf("rate = %v, want 0.15", got)
	}
}

func TestRequestStatsPopularity(t *testing.T) {
	var rs RequestStats
	rs.Observe(0)
	rs.Observe(10) // rate = 2/10 = 0.2
	// Remaining-lifetime variant: w = 1 - e^{-0.2 * (50-20)}.
	want := 1 - math.Exp(-0.2*30)
	if got := rs.Popularity(20, 50, false); math.Abs(got-want) > 1e-12 {
		t.Errorf("popularity = %v, want %v", got, want)
	}
	// Literal Eq. (6) variant: window (t_e - t_1) = 50.
	wantLit := 1 - math.Exp(-0.2*50)
	if got := rs.Popularity(20, 50, true); math.Abs(got-wantLit) > 1e-12 {
		t.Errorf("literal popularity = %v, want %v", got, wantLit)
	}
	// Expired item has zero popularity.
	if got := rs.Popularity(60, 50, false); got != 0 {
		t.Errorf("expired popularity = %v", got)
	}
	// No requests => zero popularity.
	var empty RequestStats
	if empty.Popularity(0, 100, false) != 0 {
		t.Error("no-request popularity should be 0")
	}
}

func TestRequestStatsPopularityMonotoneInRequests(t *testing.T) {
	// More requests in the same window => higher popularity.
	f := func(k1, k2 uint8) bool {
		a := int(k1%20) + 2
		b := int(k2%20) + 2
		if a > b {
			a, b = b, a
		}
		mk := func(k int) RequestStats {
			var rs RequestStats
			for i := 0; i < k; i++ {
				rs.Observe(float64(i) * 10 / float64(k-1) * float64(k-1)) // spread over [0,10*(k-1)]
			}
			return rs
		}
		_ = mk
		var ra, rb RequestStats
		for i := 0; i < a; i++ {
			ra.Observe(float64(i) * 100 / float64(a-1))
		}
		for i := 0; i < b; i++ {
			rb.Observe(float64(i) * 100 / float64(b-1))
		}
		// Same window [0,100]; more requests => higher rate => higher w.
		return ra.Popularity(100, 200, false) <= rb.Popularity(100, 200, false)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRequestStatsMerge(t *testing.T) {
	var a, b RequestStats
	a.Observe(10)
	a.Observe(20)
	b.Observe(5)
	b.Observe(30)
	a.Merge(b)
	if a.Count != 4 || a.First != 5 || a.Last != 30 {
		t.Errorf("merged = %+v", a)
	}
	var empty RequestStats
	a.Merge(empty) // no-op
	if a.Count != 4 {
		t.Error("merging empty changed stats")
	}
	var c RequestStats
	c.Merge(a)
	if c != a {
		t.Error("merging into empty should copy")
	}
}

func TestBufferPutGetRemove(t *testing.T) {
	b := New(100)
	if b.Capacity() != 100 || b.Free() != 100 || b.Len() != 0 {
		t.Fatal("fresh buffer wrong")
	}
	e, err := b.Put(item(1, 40, 0, 100), 5)
	if err != nil {
		t.Fatal(err)
	}
	if e.CachedAt != 5 || e.Home != -1 {
		t.Errorf("entry = %+v", e)
	}
	if !b.Has(1) || b.Get(1) == nil || b.Used() != 40 || b.Free() != 60 {
		t.Error("state after put wrong")
	}
	if _, err := b.Put(item(1, 10, 0, 100), 6); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := b.Put(item(2, 200, 0, 100), 6); !errors.Is(err, ErrTooLarge) {
		t.Errorf("too large: %v", err)
	}
	if _, err := b.Put(item(3, 70, 0, 100), 6); !errors.Is(err, ErrNoSpace) {
		t.Errorf("no space: %v", err)
	}
	if got := b.Remove(1); got == nil || got.Data.ID != 1 {
		t.Error("remove failed")
	}
	if b.Remove(1) != nil {
		t.Error("double remove should return nil")
	}
	if b.Used() != 0 {
		t.Errorf("used = %v after removal", b.Used())
	}
	ins, evs := b.Stats()
	if ins != 1 || evs != 1 {
		t.Errorf("stats = %d inserts %d evictions", ins, evs)
	}
}

func TestBufferEntriesSorted(t *testing.T) {
	b := New(1000)
	for _, id := range []int{5, 1, 3} {
		if _, err := b.Put(item(id, 10, 0, 100), 0); err != nil {
			t.Fatal(err)
		}
	}
	es := b.Entries()
	if len(es) != 3 || es[0].Data.ID != 1 || es[1].Data.ID != 3 || es[2].Data.ID != 5 {
		t.Errorf("entries order wrong: %v", es)
	}
}

func TestBufferDropExpired(t *testing.T) {
	b := New(1000)
	b.Put(item(1, 10, 0, 50), 0)
	b.Put(item(2, 10, 0, 150), 0)
	dropped := b.DropExpired(100)
	if len(dropped) != 1 || dropped[0].Data.ID != 1 {
		t.Errorf("dropped = %v", dropped)
	}
	if !b.Has(2) || b.Has(1) {
		t.Error("wrong entries dropped")
	}
}

// TestBufferWipeRefill pins the crash-wipe contract across wipe/refill
// cycles: Wipe returns every entry (for re-replication bookkeeping),
// zeroes occupancy, counts the losses as evictions, and leaves the
// buffer fully reusable with the sorted-slice and expiry invariants
// intact.
func TestBufferWipeRefill(t *testing.T) {
	b := New(1000)
	if b.Wipe() != nil {
		t.Error("wiping an empty buffer must return nil")
	}
	for cycle := 0; cycle < 3; cycle++ {
		base := cycle * 10
		for _, id := range []int{base + 5, base + 1, base + 3} {
			if _, err := b.Put(item(id, 10, 0, 50), 0); err != nil {
				t.Fatal(err)
			}
		}
		wiped := b.Wipe()
		if len(wiped) != 3 {
			t.Fatalf("cycle %d: wiped %d entries, want 3", cycle, len(wiped))
		}
		// Wiped entries come back in the buffer's sorted-by-ID order.
		for i, want := range []int{base + 1, base + 3, base + 5} {
			if wiped[i].Data.ID != workload.DataID(want) {
				t.Errorf("cycle %d: wiped[%d] = %d, want %d", cycle, i, wiped[i].Data.ID, want)
			}
		}
		if b.Len() != 0 || b.Used() != 0 || b.Free() != b.Capacity() {
			t.Fatalf("cycle %d: len=%d used=%g free=%g after wipe",
				cycle, b.Len(), b.Used(), b.Free())
		}
		if b.Has(workload.DataID(base+1)) || b.Get(workload.DataID(base+3)) != nil {
			t.Errorf("cycle %d: wiped entries still visible", cycle)
		}
	}
	ins, evs := b.Stats()
	if ins != 9 || evs != 9 {
		t.Errorf("stats = %d inserts %d evictions, want 9, 9", ins, evs)
	}
	// The refilled buffer still honors the sorted-entries and expiry
	// invariants.
	b.Put(item(100, 10, 0, 50), 0)
	b.Put(item(99, 10, 0, 150), 0)
	es := b.Entries()
	if len(es) != 2 || es[0].Data.ID != 99 || es[1].Data.ID != 100 {
		t.Errorf("entries after refill: %v", es)
	}
	if dropped := b.DropExpired(100); len(dropped) != 1 || dropped[0].Data.ID != 100 {
		t.Errorf("expiry after wipe/refill: %v", dropped)
	}
}

func TestBufferCapacityInvariant(t *testing.T) {
	// Property: random puts/removes never exceed capacity, and Used is
	// always the sum of entry sizes.
	f := func(ops []uint8) bool {
		b := New(500)
		id := 0
		for _, op := range ops {
			switch op % 3 {
			case 0, 1:
				id++
				size := float64(op%200) + 1
				b.Put(item(id, size, 0, 1e9), 0)
			case 2:
				es := b.Entries()
				if len(es) > 0 {
					b.Remove(es[int(op)%len(es)].Data.ID)
				}
			}
			var sum float64
			for _, e := range b.Entries() {
				sum += e.Data.SizeBits
			}
			if math.Abs(sum-b.Used()) > 1e-9 || b.Used() > b.Capacity()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
