package fault

import (
	"strings"
	"testing"

	"dtncache/internal/trace"
)

// fakeWorld is a hand-built World for checker tests; the zero value is
// a healthy two-node world.
type fakeWorld struct {
	nodes int
	down  map[trace.NodeID]bool
	used  map[trace.NodeID]float64
	busy  [][2]trace.NodeID
	dups  int
}

func (w *fakeWorld) NumNodes() int {
	if w.nodes == 0 {
		return 2
	}
	return w.nodes
}
func (w *fakeWorld) NodeDown(n trace.NodeID) bool { return w.down[n] }
func (w *fakeWorld) BufferUsage(n trace.NodeID) (float64, float64) {
	return w.used[n], 1000
}
func (w *fakeWorld) BusyTransfers() [][2]trace.NodeID { return w.busy }
func (w *fakeWorld) DuplicateResponses() int          { return w.dups }

func TestCheckHealthyWorld(t *testing.T) {
	w := &fakeWorld{
		used: map[trace.NodeID]float64{0: 500, 1: 1000},
		busy: [][2]trace.NodeID{{0, 1}},
	}
	if v := Check(w, 10); len(v) != 0 {
		t.Errorf("healthy world flagged: %v", v)
	}
}

// The negative test the checker itself is verified by: each
// deliberately broken world must be caught by exactly its rule.
func TestCheckBrokenWorlds(t *testing.T) {
	cases := []struct {
		name     string
		world    *fakeWorld
		wantRule string
	}{
		{
			"transfer to down node",
			&fakeWorld{
				down: map[trace.NodeID]bool{1: true},
				busy: [][2]trace.NodeID{{0, 1}},
			},
			"no-transfer-to-down-node",
		},
		{
			"negative occupancy",
			&fakeWorld{used: map[trace.NodeID]float64{0: -5}},
			"buffer-occupancy",
		},
		{
			"occupancy over capacity",
			&fakeWorld{used: map[trace.NodeID]float64{1: 1002}},
			"buffer-occupancy",
		},
		{
			"duplicate responses",
			&fakeWorld{dups: 3},
			"no-duplicate-response",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Check(tc.world, 42)
			if len(v) != 1 {
				t.Fatalf("got %d violations, want exactly 1: %v", len(v), v)
			}
			if v[0].Rule != tc.wantRule {
				t.Errorf("rule %q, want %q", v[0].Rule, tc.wantRule)
			}
			if v[0].At != 42 {
				t.Errorf("violation time %g, want 42", v[0].At)
			}
			if !strings.Contains(v[0].String(), tc.wantRule) {
				t.Errorf("String() %q missing rule name", v[0])
			}
		})
	}
}

// Float residue from draining a buffer of ~1e8-bit items must not trip
// the occupancy rule; a whole missing item must.
func TestCheckOccupancyTolerance(t *testing.T) {
	w := &fakeWorld{used: map[trace.NodeID]float64{0: -1e-7, 1: 1000.5}}
	if v := Check(w, 0); len(v) != 0 {
		t.Errorf("rounding residue flagged: %v", v)
	}
}
