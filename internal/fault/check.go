package fault

import (
	"fmt"

	"dtncache/internal/trace"
)

// World is the invariant checker's read-only view of a running
// simulation. scheme.Env adapts itself to this interface; tests may
// hand in fakes (including deliberately broken ones).
type World interface {
	// NumNodes returns the node count.
	NumNodes() int
	// NodeDown reports whether a node is currently crashed.
	NodeDown(n trace.NodeID) bool
	// BufferUsage returns a node's buffer occupancy and capacity.
	BufferUsage(n trace.NodeID) (used, capacity float64)
	// BusyTransfers returns the endpoint pairs with an in-flight
	// transfer.
	BusyTransfers() [][2]trace.NodeID
	// DuplicateResponses returns how many (node, query) pairs decided
	// to respond to the same query more than once.
	DuplicateResponses() int
}

// Violation is one invariant breach observed at a check point.
type Violation struct {
	At     float64
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.1f %s: %s", v.At, v.Rule, v.Detail)
}

// Check evaluates the runtime invariants against w at virtual time now:
//
//   - no-transfer-to-down-node: an in-flight transfer never touches a
//     crashed endpoint (crashes force-close sessions synchronously);
//   - buffer-occupancy: every buffer satisfies 0 <= used <= capacity,
//     across wipes and refills;
//   - no-duplicate-response: a node never decides to answer the same
//     query twice (the responded bitset survives reboots).
//
// It returns the violations found, nil when all invariants hold.
func Check(w World, now float64) []Violation {
	var out []Violation
	for _, p := range w.BusyTransfers() {
		for _, n := range p {
			if w.NodeDown(n) {
				out = append(out, Violation{
					At:   now,
					Rule: "no-transfer-to-down-node",
					Detail: fmt.Sprintf("transfer in flight on pair (%d,%d) while node %d is down",
						p[0], p[1], n),
				})
			}
		}
	}
	// Occupancy is a running float sum of ~1e8-bit item sizes, so
	// draining a buffer leaves rounding residue far above 1e-9. One bit
	// of slack is still ~8 orders of magnitude below any real violation
	// (the smallest possible over-/under-count is a whole item).
	const eps = 1.0
	for i := 0; i < w.NumNodes(); i++ {
		used, capacity := w.BufferUsage(trace.NodeID(i))
		if used < -eps || used > capacity+eps {
			out = append(out, Violation{
				At:   now,
				Rule: "buffer-occupancy",
				Detail: fmt.Sprintf("node %d buffer used=%.1f outside [0, capacity=%.1f]",
					i, used, capacity),
			})
		}
	}
	if d := w.DuplicateResponses(); d > 0 {
		out = append(out, Violation{
			At:     now,
			Rule:   "no-duplicate-response",
			Detail: fmt.Sprintf("%d duplicate (node, query) response decisions", d),
		})
	}
	return out
}
