package fault

import (
	"reflect"
	"testing"

	"dtncache/internal/mathx"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
)

// nopHandler ignores contact lifecycle callbacks.
type nopHandler struct{}

func (nopHandler) ContactStart(*sim.Session) {}
func (nopHandler) ContactEnd(*sim.Session)   {}

// buildFaulted wires a simulator + driver + engine over a small
// three-node trace.
func buildFaulted(t *testing.T, cfg Config, seed int64) (*sim.Simulator, *sim.Driver, *Engine) {
	t.Helper()
	s := sim.New()
	root := mathx.NewRand(seed)
	eng, err := NewEngine(s, 3, cfg, root.Derive)
	if err != nil {
		t.Fatal(err)
	}
	d := sim.NewDriver(s, nopHandler{}, sim.WithFaults(eng))
	eng.Bind(d, nil)
	tr := &trace.Trace{Nodes: 3, Duration: 10000, Contacts: []trace.Contact{
		{A: 0, B: 1, Start: 100, End: 500},
		{A: 1, B: 2, Start: 600, End: 900},
		{A: 0, B: 2, Start: 2000, End: 9000},
	}}
	if err := d.Load(tr); err != nil {
		t.Fatal(err)
	}
	return s, d, eng
}

// churnTimeline runs a churn-only config on a bare simulator and
// returns the (time, node, down) transition sequence.
func churnTimeline(t *testing.T, seed int64) []struct {
	at   float64
	n    trace.NodeID
	down bool
} {
	t.Helper()
	s := sim.New()
	root := mathx.NewRand(seed)
	eng, err := NewEngine(s, 5, Config{
		ChurnMeanUpSec: 300, ChurnMeanDownSec: 100,
	}, root.Derive)
	if err != nil {
		t.Fatal(err)
	}
	var out []struct {
		at   float64
		n    trace.NodeID
		down bool
	}
	eng.OnDown = func(n trace.NodeID, at float64) {
		out = append(out, struct {
			at   float64
			n    trace.NodeID
			down bool
		}{at, n, true})
	}
	eng.OnUp = func(n trace.NodeID, at float64) {
		out = append(out, struct {
			at   float64
			n    trace.NodeID
			down bool
		}{at, n, false})
	}
	s.RunUntil(5000)
	return out
}

func TestChurnDeterministic(t *testing.T) {
	a := churnTimeline(t, 7)
	b := churnTimeline(t, 7)
	if len(a) == 0 {
		t.Fatal("churn produced no transitions in 5000s with mean up 300s")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different churn timelines:\n%v\n%v", a, b)
	}
	if c := churnTimeline(t, 8); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical churn timelines")
	}
}

func TestFailRecoverIdempotentAndVersioned(t *testing.T) {
	s := sim.New()
	root := mathx.NewRand(1)
	eng, err := NewEngine(s, 3, Config{KillProb: 0.5}, root.Derive)
	if err != nil {
		t.Fatal(err)
	}
	v0 := eng.Version()
	eng.Fail(1, 10)
	eng.Fail(1, 11) // no-op
	if !eng.NodeDown(1) || eng.DownCount() != 1 {
		t.Fatalf("down=%v count=%d after Fail", eng.NodeDown(1), eng.DownCount())
	}
	if eng.Version() != v0+1 {
		t.Errorf("version %d after one transition, want %d", eng.Version(), v0+1)
	}
	eng.Recover(1, 20)
	eng.Recover(1, 21) // no-op
	if eng.NodeDown(1) || eng.DownCount() != 0 || eng.Version() != v0+2 {
		t.Errorf("down=%v count=%d version=%d after Recover",
			eng.NodeDown(1), eng.DownCount(), eng.Version())
	}
	crashes, recoveries, _, _ := eng.Stats()
	if crashes != 1 || recoveries != 1 {
		t.Errorf("stats crashes=%d recoveries=%d, want 1, 1", crashes, recoveries)
	}
}

func TestDownNodeContactsSkipped(t *testing.T) {
	s, d, eng := buildFaulted(t, Config{KillProb: 0}, 1)
	// Crash node 2 before its contacts open; recover before the last one.
	_ = s.Schedule(50, func() { eng.Fail(2, s.Now()) })
	_ = s.Schedule(1000, func() { eng.Recover(2, s.Now()) })
	s.Run()
	// Contact (1,2) at 600 is skipped; (0,1) at 100 and (0,2) at 2000 open.
	if got := d.SkippedContacts(); got != 1 {
		t.Errorf("skipped %d contacts, want 1", got)
	}
}

func TestCrashForceClosesSessions(t *testing.T) {
	s, d, eng := buildFaulted(t, Config{}, 1)
	closed := -1
	_ = s.Schedule(200, func() { closed = d.CloseNode(99) }) // no sessions touch 99
	dropped := 0
	_ = s.Schedule(150, func() {
		sess := d.Session(0, 1)
		if sess == nil {
			t.Error("session (0,1) not active at t=150")
			return
		}
		sess.Enqueue(sim.Transfer{From: 0, To: 1, Bits: sim.DefaultBandwidth * 1000, // cannot finish
			OnDropped: func(sim.Time) { dropped++ }})
		eng.Fail(0, s.Now())
	})
	s.Run()
	if dropped != 1 {
		t.Errorf("crash dropped %d queued transfers, want 1", dropped)
	}
	if closed != 0 {
		t.Errorf("CloseNode on uninvolved node closed %d sessions, want 0", closed)
	}
}

func TestTruncationShortensContacts(t *testing.T) {
	s, d, eng := buildFaulted(t, Config{TruncateProb: 1}, 1)
	s.Run()
	_, _, truncated, _ := eng.Stats()
	if truncated != 3 {
		t.Errorf("truncated %d contacts with prob 1, want all 3", truncated)
	}
	if d.SkippedContacts() != 0 {
		t.Errorf("truncation must shorten, not skip: %d skipped", d.SkippedContacts())
	}
}

func TestKillTransfer(t *testing.T) {
	s, d, eng := buildFaulted(t, Config{KillProb: 1}, 1)
	deliveredCb, droppedCb := 0, 0
	_ = s.Schedule(150, func() {
		d.Session(0, 1).Enqueue(sim.Transfer{From: 0, To: 1, Bits: 1000,
			OnDelivered: func(sim.Time) { deliveredCb++ },
			OnDropped:   func(sim.Time) { droppedCb++ }})
	})
	s.Run()
	if deliveredCb != 0 || droppedCb != 1 {
		t.Errorf("KillProb=1: delivered=%d dropped=%d, want 0, 1", deliveredCb, droppedCb)
	}
	_, _, _, killed := eng.Stats()
	if killed != 1 {
		t.Errorf("killed stat %d, want 1", killed)
	}
}

func TestBlackoutWindow(t *testing.T) {
	s := sim.New()
	root := mathx.NewRand(1)
	eng, err := NewEngine(s, 6, Config{
		BlackoutNCLs: 2, BlackoutStartSec: 100, BlackoutEndSec: 200,
	}, root.Derive)
	if err != nil {
		t.Fatal(err)
	}
	eng.RankedNodes = func(k int) []trace.NodeID {
		return []trace.NodeID{3, 1, 4, 0, 2, 5}[:k]
	}
	_ = s.Schedule(150, func() {
		if !eng.NodeDown(3) || !eng.NodeDown(1) {
			t.Errorf("top-2 ranked nodes not down mid-window: 3=%v 1=%v",
				eng.NodeDown(3), eng.NodeDown(1))
		}
		if eng.NodeDown(4) {
			t.Error("rank-3 node down during a 2-NCL blackout")
		}
	})
	s.RunUntil(300)
	if eng.DownCount() != 0 {
		t.Errorf("%d nodes still down after the window", eng.DownCount())
	}
}

func TestBlackoutWithoutRankingIsNoop(t *testing.T) {
	s := sim.New()
	root := mathx.NewRand(1)
	eng, err := NewEngine(s, 4, Config{
		BlackoutNCLs: 2, BlackoutStartSec: 10, BlackoutEndSec: 20,
	}, root.Derive)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(30)
	if eng.DownCount() != 0 {
		t.Error("blackout fired without a RankedNodes source")
	}
}

func TestNewEngineRejectsBadConfig(t *testing.T) {
	s := sim.New()
	root := mathx.NewRand(1)
	if _, err := NewEngine(s, 3, Config{KillProb: 2}, root.Derive); err == nil {
		t.Error("NewEngine accepted an invalid config")
	}
}

// TestProbeArmedIdleZeroAlloc pins the hot-path contract: with an
// engine installed but its probabilistic models disabled (KillProb 0,
// TruncateProb 0, no churn due), the driver's transfer path must stay
// at 0 allocs/op — the probe adds nil-checks and branches, never
// allocation.
//
//dtn:allocfree the measured closure may not allocate
func TestProbeArmedIdleZeroAlloc(t *testing.T) {
	s := sim.New()
	root := mathx.NewRand(1)
	// Churn armed but first event far beyond the measured horizon.
	eng, err := NewEngine(s, 2, Config{
		ChurnMeanUpSec: 1e12, ChurnMeanDownSec: 1, ChurnStartSec: 1e12,
	}, root.Derive)
	if err != nil {
		t.Fatal(err)
	}
	d := sim.NewDriver(s, nopHandler{}, sim.WithFaults(eng))
	eng.Bind(d, nil)
	tr := &trace.Trace{Nodes: 2, Duration: 1e9, Contacts: []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 1e9},
	}}
	if err := d.Load(tr); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1)
	sess := d.Session(0, 1)
	if sess == nil {
		t.Fatal("session not active")
	}
	tf := sim.Transfer{From: 0, To: 1, Bits: 1000}
	next := 1.0
	// Warm the session queue's backing array.
	sess.Enqueue(tf)
	next += 1
	s.RunUntil(next)
	allocs := testing.AllocsPerRun(200, func() {
		sess.Enqueue(tf)
		next += 1
		s.RunUntil(next)
	})
	if allocs != 0 {
		t.Errorf("transfer with armed-idle fault probe: %.1f allocs/op, want 0", allocs)
	}
}
