// Package fault is the deterministic fault-injection layer: seeded,
// composable failure models driven by events on the simulator's pooled
// heap, plus the runtime invariant checker the recovery machinery is
// verified against.
//
// Fault models (all optional, all seeded from the run's root RNG via
// derived streams, so a faulted run is byte-identical across
// invocations at a fixed seed):
//
//   - node crash/recover churn: a per-node two-state Markov process
//     with exponentially distributed up and down times; crashing a
//     node force-closes its active contacts and (optionally) wipes its
//     buffer, and traced contacts touching a down node never open;
//   - contact truncation: each contact is independently shortened to a
//     uniform point of its traced span with a fixed probability;
//   - mid-transfer kill: each transfer independently fails in flight
//     with a fixed probability (the generalization of the old
//     scheme-level DropProb knob, which now routes here);
//   - NCL blackout: a window during which the top-k metric-ranked
//     central nodes are all down — the targeted worst case for the
//     intentional scheme's pull phase.
//
// The Engine implements sim.FaultProbe; with no engine installed the
// driver's hot path stays at one nil-check branch and 0 allocs/op
// (mirroring the internal/obs nil-safe pattern).
//
//dtn:determinism
package fault

import (
	"errors"
	"math"
)

// Config selects and parameterizes the fault models. The zero value
// disables everything.
type Config struct {
	// ChurnMeanUpSec enables crash/recover churn when positive: each
	// node independently stays up for an Exp-distributed time with this
	// mean, then crashes.
	ChurnMeanUpSec float64
	// ChurnMeanDownSec is the mean Exp-distributed downtime after a
	// churn crash. Required positive when churn is enabled.
	ChurnMeanDownSec float64
	// ChurnStartSec delays the first possible churn crash, e.g. past a
	// warmup window.
	ChurnStartSec float64
	// WipeOnCrash loses the crashed node's buffered copies (the node
	// reboots empty); its own generated data survives on stable
	// storage.
	WipeOnCrash bool

	// TruncateProb is the per-contact probability of the contact being
	// cut short at a uniform point of its traced span.
	TruncateProb float64
	// KillProb is the per-transfer probability of an in-flight kill.
	KillProb float64

	// BlackoutNCLs > 0 crashes the top-BlackoutNCLs metric-ranked nodes
	// for the window [BlackoutStartSec, BlackoutEndSec).
	BlackoutNCLs     int
	BlackoutStartSec float64
	BlackoutEndSec   float64
}

// Zero reports whether the config enables no fault model at all, i.e.
// installing an engine for it would be pure overhead.
func (c Config) Zero() bool {
	return c.ChurnMeanUpSec == 0 && c.TruncateProb == 0 &&
		c.KillProb == 0 && c.BlackoutNCLs == 0
}

func nonFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Validate rejects malformed fault parameters.
func (c Config) Validate() error {
	switch {
	case nonFinite(c.ChurnMeanUpSec, c.ChurnMeanDownSec, c.ChurnStartSec,
		c.TruncateProb, c.KillProb, c.BlackoutStartSec, c.BlackoutEndSec):
		return errors.New("fault: non-finite parameter")
	case c.ChurnMeanUpSec < 0:
		return errors.New("fault: negative churn mean uptime")
	case c.ChurnMeanDownSec < 0:
		return errors.New("fault: negative churn mean downtime")
	case c.ChurnMeanUpSec > 0 && c.ChurnMeanDownSec == 0:
		return errors.New("fault: churn enabled without a mean downtime")
	case c.ChurnStartSec < 0:
		return errors.New("fault: negative churn start time")
	case c.TruncateProb < 0 || c.TruncateProb > 1:
		return errors.New("fault: contact truncation probability outside [0,1]")
	case c.KillProb < 0 || c.KillProb > 1:
		return errors.New("fault: transfer kill probability outside [0,1]")
	case c.BlackoutNCLs < 0:
		return errors.New("fault: negative blackout NCL count")
	case c.BlackoutStartSec < 0:
		return errors.New("fault: negative blackout start time")
	case c.BlackoutNCLs > 0 && c.BlackoutEndSec <= c.BlackoutStartSec:
		return errors.New("fault: blackout end not after blackout start")
	}
	return nil
}
