package fault

import (
	"strconv"

	"dtncache/internal/mathx"
	"dtncache/internal/obs"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
)

// Engine drives the configured fault models against one simulation run.
// It implements sim.FaultProbe (NodeDown / TruncateContact /
// KillTransfer) for the contact driver's hot path and schedules its own
// churn and blackout events on the simulator heap.
//
// Construction is two-phase because the driver is built after its
// options: NewEngine wires the simulator and RNG streams, Bind attaches
// the driver and recorder before Run.
type Engine struct {
	sim    *sim.Simulator
	driver *sim.Driver
	cfg    Config

	down      []bool
	downCount int
	version   uint64 // bumped on every state transition (failover cache key)

	killRng  *mathx.Rand
	truncRng *mathx.Rand

	crashes    int
	recoveries int
	truncated  int
	killed     int

	rec         *obs.Recorder
	cCrashes    *obs.Counter
	cRecoveries *obs.Counter
	cTruncated  *obs.Counter
	cKilled     *obs.Counter

	// OnDown and OnUp observe node state transitions; the scheme layer
	// hangs its recovery actions (buffer wipe, protocol-state drop,
	// re-replication) here. Optional.
	OnDown func(n trace.NodeID, at float64)
	OnUp   func(n trace.NodeID, at float64)
	// RankedNodes supplies the metric-descending node ranking used to
	// pick blackout victims. Blackout windows are skipped while it is
	// unset (pure-sim runs have no metric ranking).
	RankedNodes func(k int) []trace.NodeID

	blackoutVictims []trace.NodeID
}

// churnNode is one node's two-state Markov process. The tick closure is
// created once per node at setup, so churn costs no allocation during
// the run.
type churnNode struct {
	e    *Engine
	n    trace.NodeID
	rng  *mathx.Rand
	tick func()
}

func (c *churnNode) run() {
	e := c.e
	now := e.sim.Now()
	// Branch on the live state, not an assumed alternation: a blackout
	// window may have crashed or recovered this node in between, and the
	// process must re-synchronize rather than double-toggle.
	if !e.down[c.n] {
		e.Fail(c.n, now)
		_ = e.sim.Schedule(now+c.rng.Exp(1/e.cfg.ChurnMeanDownSec), c.tick)
	} else {
		e.Recover(c.n, now)
		_ = e.sim.Schedule(now+c.rng.Exp(1/e.cfg.ChurnMeanUpSec), c.tick)
	}
}

// NewEngine validates cfg and wires the fault models onto the
// simulator. derive mints named RNG streams off the run's root RNG
// (scheme.Env passes e.Rng.Derive); streams are only minted for enabled
// models, so a DropProb-equivalent config (KillProb only) consumes
// exactly the root-stream draws the old scheme-level knob did.
func NewEngine(s *sim.Simulator, nodes int, cfg Config, derive func(label string) *mathx.Rand) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		sim:  s,
		cfg:  cfg,
		down: make([]bool, nodes),
	}
	if cfg.KillProb > 0 {
		// The label predates the fault layer ("faults" was the
		// scheme-level DropProb stream); keeping it preserves byte
		// identity with recorded DropProb-era runs.
		e.killRng = derive("faults")
	}
	if cfg.TruncateProb > 0 {
		e.truncRng = derive("fault-truncate")
	}
	if cfg.ChurnMeanUpSec > 0 {
		churnRng := derive("fault-churn")
		for n := 0; n < nodes; n++ {
			cn := &churnNode{e: e, n: trace.NodeID(n), rng: churnRng.Derive(strconv.Itoa(n))}
			cn.tick = cn.run
			_ = s.Schedule(cfg.ChurnStartSec+cn.rng.Exp(1/cfg.ChurnMeanUpSec), cn.tick)
		}
	}
	if cfg.BlackoutNCLs > 0 {
		_ = s.Schedule(cfg.BlackoutStartSec, e.blackoutBegin)
		_ = s.Schedule(cfg.BlackoutEndSec, e.blackoutEnd)
	}
	return e, nil
}

// Bind attaches the contact driver (for crash-time contact teardown)
// and the observability recorder. Call once, after sim.NewDriver and
// before Run.
func (e *Engine) Bind(d *sim.Driver, rec *obs.Recorder) {
	e.driver = d
	e.rec = rec
	e.cCrashes = rec.Counter("fault", "node_crashes")
	e.cRecoveries = rec.Counter("fault", "node_recoveries")
	e.cTruncated = rec.Counter("fault", "contacts_truncated")
	e.cKilled = rec.Counter("fault", "transfers_killed")
}

// --- sim.FaultProbe ---

// NodeDown reports whether n is currently crashed.
//
//dtn:allocfree consulted per contact on the replay hot path
func (e *Engine) NodeDown(n trace.NodeID) bool { return e.down[n] }

// TruncateContact independently shortens the contact with probability
// TruncateProb, returning the effective end time.
//
//dtn:allocfree consulted per contact on the replay hot path
func (e *Engine) TruncateContact(c trace.Contact) sim.Time {
	if e.truncRng == nil || !e.truncRng.Bernoulli(e.cfg.TruncateProb) {
		return c.End
	}
	end := c.Start + e.truncRng.Float64()*(c.End-c.Start)
	e.truncated++
	e.cTruncated.Inc()
	e.rec.ContactTruncated(e.sim.Now(), int32(c.A), int32(c.B), end)
	return end
}

// KillTransfer independently fails the transfer with probability
// KillProb.
//
//dtn:allocfree consulted per transfer on the armed-idle probe path
func (e *Engine) KillTransfer(from, to trace.NodeID, bits float64, label string) bool {
	if e.killRng == nil || !e.killRng.Bernoulli(e.cfg.KillProb) {
		return false
	}
	e.killed++
	e.cKilled.Inc()
	e.rec.TransferKilled(e.sim.Now(), int32(from), int32(to), bits)
	return true
}

// --- state transitions ---

// Fail crashes n at virtual time at: its active contacts are
// force-closed (dropping in-flight and queued transfers) and future
// contacts touching it are skipped until recovery. Idempotent.
func (e *Engine) Fail(n trace.NodeID, at float64) {
	if e.down[n] {
		return
	}
	e.down[n] = true
	e.downCount++
	e.version++
	e.crashes++
	e.cCrashes.Inc()
	e.rec.NodeDown(at, int32(n))
	if e.driver != nil {
		e.driver.CloseNode(n)
	}
	if e.OnDown != nil {
		e.OnDown(n, at)
	}
}

// Recover brings n back up at virtual time at. Idempotent.
func (e *Engine) Recover(n trace.NodeID, at float64) {
	if !e.down[n] {
		return
	}
	e.down[n] = false
	e.downCount--
	e.version++
	e.recoveries++
	e.cRecoveries.Inc()
	e.rec.NodeUp(at, int32(n))
	if e.OnUp != nil {
		e.OnUp(n, at)
	}
}

func (e *Engine) blackoutBegin() {
	if e.RankedNodes == nil {
		return
	}
	e.blackoutVictims = e.RankedNodes(e.cfg.BlackoutNCLs)
	now := e.sim.Now()
	for _, n := range e.blackoutVictims {
		e.Fail(n, now)
	}
}

func (e *Engine) blackoutEnd() {
	now := e.sim.Now()
	for _, n := range e.blackoutVictims {
		e.Recover(n, now)
	}
	e.blackoutVictims = nil
}

// --- accessors ---

// DownCount returns how many nodes are currently down.
func (e *Engine) DownCount() int { return e.downCount }

// Version counts state transitions; it keys failover caches — a cached
// ranking is stale iff the version moved.
func (e *Engine) Version() uint64 { return e.version }

// Stats returns cumulative fault counts.
func (e *Engine) Stats() (crashes, recoveries, truncated, killed int) {
	return e.crashes, e.recoveries, e.truncated, e.killed
}
