package fault

import (
	"math"
	"strings"
	"testing"
)

func TestConfigZero(t *testing.T) {
	if !(Config{}).Zero() {
		t.Error("zero value must report Zero")
	}
	// WipeOnCrash and churn start alone arm nothing.
	if !(Config{WipeOnCrash: true, ChurnStartSec: 10}).Zero() {
		t.Error("wipe/start without an enabled model must still be Zero")
	}
	for _, c := range []Config{
		{ChurnMeanUpSec: 100, ChurnMeanDownSec: 10},
		{TruncateProb: 0.1},
		{KillProb: 0.1},
		{BlackoutNCLs: 1, BlackoutEndSec: 10},
	} {
		if c.Zero() {
			t.Errorf("%+v must not be Zero", c)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		ChurnMeanUpSec: 86400, ChurnMeanDownSec: 3600, ChurnStartSec: 100,
		WipeOnCrash: true, TruncateProb: 0.2, KillProb: 0.1,
		BlackoutNCLs: 2, BlackoutStartSec: 50, BlackoutEndSec: 150,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		wantIn string
	}{
		{"nan churn up", func(c *Config) { c.ChurnMeanUpSec = math.NaN() }, "non-finite"},
		{"inf blackout end", func(c *Config) { c.BlackoutEndSec = math.Inf(1) }, "non-finite"},
		{"negative churn up", func(c *Config) { c.ChurnMeanUpSec = -1 }, "negative churn mean uptime"},
		{"negative churn down", func(c *Config) { c.ChurnMeanDownSec = -1 }, "negative churn mean downtime"},
		{"churn without downtime", func(c *Config) { c.ChurnMeanDownSec = 0 }, "without a mean downtime"},
		{"negative churn start", func(c *Config) { c.ChurnStartSec = -1 }, "negative churn start"},
		{"truncate prob > 1", func(c *Config) { c.TruncateProb = 1.5 }, "truncation probability"},
		{"truncate prob < 0", func(c *Config) { c.TruncateProb = -0.1 }, "truncation probability"},
		{"kill prob > 1", func(c *Config) { c.KillProb = 2 }, "kill probability"},
		{"kill prob < 0", func(c *Config) { c.KillProb = -1 }, "kill probability"},
		{"negative blackout count", func(c *Config) { c.BlackoutNCLs = -1 }, "negative blackout NCL count"},
		{"negative blackout start", func(c *Config) { c.BlackoutStartSec = -1 }, "negative blackout start"},
		{"blackout end before start", func(c *Config) { c.BlackoutEndSec = 50 }, "blackout end not after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := good
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("malformed config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantIn) {
				t.Errorf("error %q does not mention %q", err, tc.wantIn)
			}
		})
	}
}
