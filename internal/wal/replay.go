package wal

import (
	"errors"
	"fmt"

	"dtncache/internal/engine"
	"dtncache/internal/scheme"
	"dtncache/internal/workload"
)

// ApplyResult carries what applying one record produced — the same
// values the original API call returned, which is what lets a server
// rebuild its idempotency cache during replay.
type ApplyResult struct {
	// Item is the published item (KindPublish).
	Item workload.DataItem
	// Query is the query outcome (KindQuery).
	Query engine.QueryResult
	// Events is the number of events dispatched (KindAdvance).
	Events int
	// Ingest summarizes the contact batch (KindContacts).
	Ingest scheme.IngestResult
}

// Apply replays one op record against the engine through the same API
// the original request used, so defaulting, validation and event
// scheduling are bit-identical to the live run.
func Apply(eng *engine.Engine, rec Record) (ApplyResult, error) {
	switch rec.Kind {
	case KindPublish:
		item, err := eng.Publish(engine.PublishSpec{
			Source:      int(rec.Source),
			SizeBits:    rec.SizeBits,
			LifetimeSec: rec.LifetimeSec,
		})
		return ApplyResult{Item: item}, err
	case KindQuery:
		res, err := eng.Query(engine.QuerySpec{
			Requester:     int(rec.Requester),
			Data:          workload.DataID(rec.Data),
			ConstraintSec: rec.ConstraintSec,
		})
		return ApplyResult{Query: res}, err
	case KindAdvance:
		n, err := eng.Advance(rec.To)
		return ApplyResult{Events: n}, err
	case KindContacts:
		res, err := eng.IngestContacts(rec.Contacts)
		return ApplyResult{Ingest: res}, err
	default:
		return ApplyResult{}, fmt.Errorf("wal: apply: unexpected %s record", rec.Kind)
	}
}

// Stats summarizes a replay.
type Stats struct {
	// Applied ops succeeded; Rejected ops failed engine validation —
	// deterministically, exactly as they did when first logged (the log
	// records requests accepted for processing, not requests that
	// succeeded).
	Applied, Rejected int
	// Checkpoints verified.
	Checkpoints int
}

// Replay applies the recovered records in order against a fresh engine
// built from the same flags the log was written under. Checkpoint
// records are verified — virtual time and op count must match what the
// writer saw — so config drift or nondeterministic replay fails loudly
// instead of silently serving a diverged engine. onApplied (optional)
// observes every op with its result and error, in log order; servers
// use it to rebuild the op-ID idempotency cache.
func Replay(eng *engine.Engine, recs []Record, onApplied func(Record, ApplyResult, error)) (Stats, error) {
	var st Stats
	var ops uint64
	for i, rec := range recs {
		if rec.Kind == KindCheckpoint {
			if now := eng.Now(); now != rec.Now {
				return st, fmt.Errorf("wal: checkpoint at record %d: virtual time %g != logged %g (config drift or nondeterministic replay)", i, now, rec.Now)
			}
			if ops != rec.Ops {
				return st, fmt.Errorf("wal: checkpoint at record %d: op count %d != logged %d", i, ops, rec.Ops)
			}
			st.Checkpoints++
			continue
		}
		ops++
		res, err := Apply(eng, rec)
		if errors.Is(err, engine.ErrClosed) {
			return st, fmt.Errorf("wal: replay: %w", err)
		}
		if err != nil {
			st.Rejected++
		} else {
			st.Applied++
		}
		if onApplied != nil {
			onApplied(rec, res, err)
		}
	}
	return st, nil
}
