package wal

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dtncache/internal/engine"
	"dtncache/internal/trace"
)

// tinyTrace is a small deterministic contact trace so replay tests run
// in milliseconds instead of regenerating a preset.
func tinyTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{
		Name:        "tiny",
		Nodes:       6,
		Duration:    4000,
		Granularity: 1,
		Contacts: []trace.Contact{
			{A: 0, B: 1, Start: 100, End: 700},
			{A: 1, B: 2, Start: 250, End: 900},
			{A: 2, B: 3, Start: 400, End: 1200},
			{A: 0, B: 4, Start: 900, End: 1600},
			{A: 3, B: 5, Start: 1500, End: 2400},
			{A: 1, B: 4, Start: 2200, End: 3100},
			{A: 2, B: 5, Start: 2800, End: 3600},
		},
	}
	tr.SortContacts()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func tinyEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng, err := engine.New(engine.Config{Trace: tinyTrace(t), Live: true})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// liveOps is the logged op sequence: every kind, a mid-sequence
// checkpoint, and one deterministically rejected op (unknown data ID).
func liveOps() []Record {
	return []Record{
		PublishRecord("p1", 0, 2e6, 3000),
		PublishRecord("p2", 2, 0, 0),
		AdvanceRecord(500),
		QueryRecord("q1", 3, 0, 2000),
		QueryRecord("q-bad", 1, 99, 0), // unknown data ID: rejected
		ContactsRecord([]trace.Contact{
			{A: 0, B: 5, Start: 800, End: 1400},
			{A: 4, B: 5, Start: 300, End: 450}, // already stale after advance(500)
		}),
		AdvanceRecord(1500),
		QueryRecord("q2", 5, 1, 1500),
		AdvanceRecord(3000),
	}
}

// TestReplayReproducesEngine is the state-machine-replication pin: a
// live engine driven through an op sequence and a fresh engine replayed
// from the WAL of that sequence end in identical observable state.
func TestReplayReproducesEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	w, err := Create(path, "cfg", SyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	live := tinyEngine(t)
	var liveResults []ApplyResult
	var liveErrs []string
	wantRejected := 0
	for i, rec := range liveOps() {
		// Log-then-apply, the journal discipline.
		if err := w.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		res, err := Apply(live, rec)
		liveResults = append(liveResults, res)
		if err != nil {
			liveErrs = append(liveErrs, err.Error())
			wantRejected++
		} else {
			liveErrs = append(liveErrs, "")
		}
		if i == 4 {
			if err := w.Checkpoint(live.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Checkpoint(live.Now()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec, err := Resume(path, SyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Torn != nil {
		t.Fatalf("clean shutdown recovered torn: %v", rec.Torn)
	}
	restored := tinyEngine(t)
	var gotResults []ApplyResult
	var gotErrs []string
	st, err := Replay(restored, rec.Records, func(_ Record, res ApplyResult, err error) {
		gotResults = append(gotResults, res)
		if err != nil {
			gotErrs = append(gotErrs, err.Error())
		} else {
			gotErrs = append(gotErrs, "")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints != 2 {
		t.Errorf("verified %d checkpoints, want 2", st.Checkpoints)
	}
	if st.Rejected != wantRejected || st.Applied != len(liveOps())-wantRejected {
		t.Errorf("stats %+v, want %d applied / %d rejected", st, len(liveOps())-wantRejected, wantRejected)
	}
	if !reflect.DeepEqual(gotResults, liveResults) {
		t.Errorf("replayed op results diverge:\n got %+v\nwant %+v", gotResults, liveResults)
	}
	if !reflect.DeepEqual(gotErrs, liveErrs) {
		t.Errorf("replayed op errors diverge: %v vs %v", gotErrs, liveErrs)
	}
	if got, want := restored.Now(), live.Now(); got != want {
		t.Errorf("Now: %g vs %g", got, want)
	}
	if got, want := restored.Pending(), live.Pending(); got != want {
		t.Errorf("Pending: %d vs %d", got, want)
	}
	if got, want := restored.Processed(), live.Processed(); got != want {
		t.Errorf("Processed: %d vs %d", got, want)
	}
	if got, want := restored.Report(), live.Report(); !reflect.DeepEqual(got, want) {
		t.Errorf("reports diverge:\n got %+v\nwant %+v", got, want)
	}
}

func TestReplayChecksCheckpointTime(t *testing.T) {
	recs := []Record{
		AdvanceRecord(100),
		{Kind: KindCheckpoint, Now: 999, Ops: 1},
	}
	_, err := Replay(tinyEngine(t), recs, nil)
	if err == nil || !strings.Contains(err.Error(), "virtual time 100 != logged 999") {
		t.Fatalf("checkpoint time drift not caught: %v", err)
	}
}

func TestReplayChecksCheckpointOps(t *testing.T) {
	recs := []Record{
		AdvanceRecord(100),
		{Kind: KindCheckpoint, Now: 100, Ops: 7},
	}
	_, err := Replay(tinyEngine(t), recs, nil)
	if err == nil || !strings.Contains(err.Error(), "op count 1 != logged 7") {
		t.Fatalf("checkpoint op-count drift not caught: %v", err)
	}
}

func TestReplayClosedEngine(t *testing.T) {
	eng := tinyEngine(t)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(eng, []Record{AdvanceRecord(1)}, nil)
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("replay into a closed engine: %v", err)
	}
}

func TestApplyUnknownKind(t *testing.T) {
	if _, err := Apply(tinyEngine(t), Record{Kind: 42}); err == nil {
		t.Fatal("unknown kind applied")
	}
}
