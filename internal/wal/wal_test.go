package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtncache/internal/trace"
)

// sampleRecords is one of every op kind, exercising op IDs, empty op
// IDs and a multi-contact batch.
func sampleRecords() []Record {
	return []Record{
		PublishRecord("op-1", 3, 25e6, 86400),
		PublishRecord("", 4, 0, 0),
		AdvanceRecord(1800),
		QueryRecord("op-2", 7, 0, 3600),
		ContactsRecord([]trace.Contact{
			{A: 0, B: 1, Start: 2000, End: 2600},
			{A: 2, B: 5, Start: 2100, End: 2300},
		}),
		QueryRecord("", 9, 1, 0),
	}
}

func writeSample(t *testing.T, path string, policy SyncPolicy) []Record {
	t.Helper()
	w, err := Create(path, "digest-abc", policy)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	var want []Record
	for i, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, r)
		if i == 2 {
			if err := w.Checkpoint(1800); err != nil {
				t.Fatal(err)
			}
			want = append(want, Record{Kind: KindCheckpoint, Now: 1800, Ops: 3})
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func readAll(t *testing.T, data []byte) (*Reader, []Record, error) {
	t.Helper()
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	var recs []Record
	for {
		r, err := rd.Next()
		if err == io.EOF {
			return rd, recs, nil
		}
		if err != nil {
			return rd, recs, err
		}
		recs = append(recs, r)
	}
}

func recordsEqual(a, b Record) bool {
	if a.Kind != b.Kind || a.OpID != b.OpID ||
		a.Source != b.Source || a.SizeBits != b.SizeBits || a.LifetimeSec != b.LifetimeSec ||
		a.Requester != b.Requester || a.Data != b.Data || a.ConstraintSec != b.ConstraintSec ||
		a.To != b.To || a.Now != b.Now || a.Ops != b.Ops ||
		len(a.Contacts) != len(b.Contacts) {
		return false
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	want := writeSample(t, path, SyncAlways)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rd, got, err := readAll(t, data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Digest() != "digest-abc" {
		t.Errorf("digest = %q", rd.Digest())
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if rd.Offset() != int64(len(data)) {
		t.Errorf("final offset %d, file size %d", rd.Offset(), len(data))
	}
}

func TestResumeCleanAndAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	want := writeSample(t, path, SyncCheckpoint)
	w, rec, err := Resume(path, SyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn != nil {
		t.Fatalf("clean log reported torn tail: %v", rec.Torn)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	if w.Ops() != 6 {
		t.Errorf("resumed op count %d, want 6", w.Ops())
	}
	if w.Digest() != "digest-abc" {
		t.Errorf("resumed digest %q", w.Digest())
	}
	if err := w.Append(AdvanceRecord(3600)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := readAll(t, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 || got[len(got)-1].To != 3600 {
		t.Fatalf("after append: %d records, tail %+v", len(got), got[len(got)-1])
	}
}

// TestResumeTruncatesEveryTornTail cuts a valid log at every byte
// offset and checks the recovery invariant: the cleanly contained
// record prefix survives, the torn remainder is truncated in place,
// and the resumed writer appends correctly afterwards.
func TestResumeTruncatesEveryTornTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	writeSample(t, full, SyncNone)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries: decode the full file once, collecting offsets.
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := rd.Offset()
	boundaries := []int64{headerEnd}
	counts := []int{0}
	for {
		if _, err := rd.Next(); err != nil {
			break
		}
		boundaries = append(boundaries, rd.Offset())
		counts = append(counts, int(rd.Records()))
	}
	path := filepath.Join(dir, "cut.wal")
	for cut := headerEnd; cut <= int64(len(data)); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, rec, err := Resume(path, SyncNone)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantRecs := 0
		atBoundary := false
		for i, b := range boundaries {
			if cut >= b {
				wantRecs = counts[i]
			}
			if cut == b {
				atBoundary = true
			}
		}
		if len(rec.Records) != wantRecs {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), wantRecs)
		}
		if atBoundary && rec.Torn != nil {
			t.Fatalf("cut %d at a record boundary reported torn: %v", cut, rec.Torn)
		}
		if !atBoundary && rec.Torn == nil {
			t.Fatalf("cut %d mid-record reported clean", cut)
		}
		if err := w.Append(AdvanceRecord(9999)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := readAll(t, after)
		if err != nil {
			t.Fatalf("cut %d: reread after recovery: %v", cut, err)
		}
		if len(got) != wantRecs+1 || got[len(got)-1].To != 9999 {
			t.Fatalf("cut %d: %d records after append, want %d", cut, len(got), wantRecs+1)
		}
	}
}

func TestResumeEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.wal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, SyncNone); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Resume on empty file: %v, want ErrEmpty", err)
	}
}

// frame builds one raw record frame with a correct checksum, so the
// golden table can exercise structurally invalid payloads the Writer
// refuses to produce.
func frame(kind byte, payload []byte) []byte {
	var b []byte
	b = append(b, kind)
	b = appendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	crc := crc32.ChecksumIEEE(b)
	b = appendUint32(b, crc)
	return b
}

func header(digest string) []byte {
	var b []byte
	b = append(b, walMagic...)
	b = appendUint16(b, walVersion)
	b = appendUint16(b, uint16(len(digest)))
	b = append(b, digest...)
	return b
}

// TestGoldenErrors pins the exact classification and wording of every
// corruption class: hard header failures versus recoverable torn
// tails.
func TestGoldenErrors(t *testing.T) {
	valid := func() []byte {
		b := header("d")
		b = append(b, frame(byte(KindAdvance), appendFloat64(nil, 100))...)
		return b
	}
	corrupt := func(mut func([]byte) []byte) []byte { return mut(valid()) }
	advFrame := frame(byte(KindAdvance), appendFloat64(nil, 100))

	cases := []struct {
		name string
		data []byte
		want string
		torn bool
	}{
		{"empty input", nil, "wal: read magic: EOF", false},
		{"truncated magic", []byte("DTN"), "wal: read magic: unexpected EOF", false},
		{"bad magic", append([]byte("NOTWAL"), header("d")[6:]...), `wal: bad magic "NOTWAL" (want "DTNWAL")`, false},
		{"truncated version", header("d")[:7], "wal: read version: unexpected EOF", false},
		{"unsupported version", corrupt(func(b []byte) []byte { b[6] = 9; return b }), "wal: unsupported version 9 (want 1)", false},
		{"truncated digest length", header("d")[:9], "wal: read header: unexpected EOF", false},
		{"truncated digest", header("digest")[:12], "wal: read config digest: unexpected EOF", false},
		{"truncated record header", append(header("d"), advFrame[:3]...), "truncated record header", true},
		{"truncated payload", append(header("d"), advFrame[:9]...), "truncated payload (4 of 8 bytes)", true},
		{"truncated checksum", append(header("d"), advFrame[:15]...), "truncated checksum", true},
		{"checksum mismatch", corrupt(func(b []byte) []byte { b[len(b)-5] ^= 1; return b }), "checksum mismatch", true},
		{"oversized length", append(header("d"), frameRawLen(byte(KindAdvance), 1<<25)...), "payload length 33554432 exceeds limit 16777216", true},
		{"unknown kind", append(header("d"), frame(200, nil)...), "unknown record kind 200", true},
		{"short publish payload", append(header("d"), frame(byte(KindPublish), make([]byte, 10))...), "publish payload 10 bytes, want >= 22", true},
		{"publish op ID overrun", append(header("d"), frame(byte(KindPublish), publishPayloadBadOpID())...), "publish op ID length 300 does not fit payload 22", true},
		{"short query payload", append(header("d"), frame(byte(KindQuery), make([]byte, 4))...), "query payload 4 bytes, want >= 18", true},
		{"query op ID overrun", append(header("d"), frame(byte(KindQuery), queryPayloadBadOpID())...), "query op ID length 9 does not fit payload 18", true},
		{"bad advance length", append(header("d"), frame(byte(KindAdvance), make([]byte, 7))...), "advance payload 7 bytes, want 8", true},
		{"short contacts payload", append(header("d"), frame(byte(KindContacts), make([]byte, 2))...), "contacts payload 2 bytes, want >= 4", true},
		{"contacts count mismatch", append(header("d"), frame(byte(KindContacts), appendUint32(nil, 2))...), "contacts count 2 does not match payload 4", true},
		{"bad checkpoint length", append(header("d"), frame(byte(KindCheckpoint), make([]byte, 3))...), "checkpoint payload 3 bytes, want 16", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readAll(t, tc.data)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			var torn *TornTailError
			if got := errors.As(err, &torn); got != tc.torn {
				t.Fatalf("torn classification = %v, want %v (err %q)", got, tc.torn, err)
			}
		})
	}
}

// frameRawLen builds a record head with an arbitrary (lying) payload
// length and no payload.
func frameRawLen(kind byte, payloadLen uint32) []byte {
	var b []byte
	b = append(b, kind)
	b = appendUint32(b, payloadLen)
	return b
}

func publishPayloadBadOpID() []byte {
	p := make([]byte, 22)
	binary.LittleEndian.PutUint16(p[20:], 300)
	return p
}

func queryPayloadBadOpID() []byte {
	p := make([]byte, 18)
	binary.LittleEndian.PutUint16(p[16:], 9)
	return p
}

func TestStickyErrors(t *testing.T) {
	data := append(header("d"), frame(200, nil)...)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err1 := rd.Next()
	_, err2 := rd.Next()
	if err1 == nil || err1 != err2 {
		t.Fatalf("errors not sticky: %v then %v", err1, err2)
	}
}

func TestWriterGuards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.wal")
	w, err := Create(path, "d", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindCheckpoint}); err == nil {
		t.Error("Append accepted a checkpoint record")
	}
	if err := w.Append(PublishRecord(strings.Repeat("x", maxOpIDLen+1), 0, 0, 0)); err == nil {
		t.Error("Append accepted an oversized op ID")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := w.Append(AdvanceRecord(1)); err == nil {
		t.Error("Append after Close succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Error("Sync after Close succeeded")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"none", SyncNone, true},
		{"checkpoint", SyncCheckpoint, true},
		{"always", SyncAlways, true},
		{"fsync", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}
