// Package wal is the write-ahead op log behind a durable dtnserved: a
// deterministic, CRC-framed, length-prefixed binary log of the live
// mutating ops (publish / query / advance / contact-ingest) applied to
// an engine. Because the engine is a deterministic state machine — any
// engine state is a pure function of its config and the applied op
// sequence — replaying the log against a fresh engine built from the
// same flags reproduces /v1/status counters and /report byte-
// identically. The file layout (all integers little-endian):
//
//	magic     [6]byte  "DTNWAL"
//	version   uint16   currently 1
//	digestLen uint16
//	digest    [digestLen]byte   config digest of the serving flags
//	record*
//
// Each record is:
//
//	kind       uint8
//	payloadLen uint32   bounded by maxRecordBytes
//	payload    [payloadLen]byte
//	crc        uint32   IEEE CRC-32 of kind || payloadLen || payload
//
// There is no trailer: an append-only log is by construction cut off at
// an arbitrary point by a crash, so a clean EOF at a record boundary is
// a clean end, and anything else — a partial record, a checksum
// mismatch, a corrupt length or kind — is a torn tail. Torn tails are
// recoverable (Resume truncates the file at the last valid record and
// appends from there); header corruption is not, because the config
// digest that gates recovery is no longer trustworthy.
//
// Checkpoint records are consistency markers, not state snapshots: they
// carry the virtual time and op count at the moment they were written,
// and replay verifies both, so config drift or nondeterministic replay
// is detected instead of silently producing a diverged engine.
//
//dtn:determinism
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"dtncache/internal/trace"
)

const (
	walMagic   = "DTNWAL"
	walVersion = 1

	// headBytes is the fixed record prefix: kind u8 + payloadLen u32.
	headBytes = 5

	// maxRecordBytes bounds a single record payload so a corrupt length
	// field cannot make recovery allocate gigabytes.
	maxRecordBytes = 1 << 24

	// maxOpIDLen bounds the client-chosen idempotency key.
	maxOpIDLen = 256

	// contactBytes is the per-contact payload cost in a contacts
	// record: u32 a + u32 b + f64 start + f64 end (the chunked-trace
	// columnar layout).
	contactBytes = 24

	// maxContactsPerRecord is the largest batch one contacts record
	// holds, derived from maxRecordBytes.
	maxContactsPerRecord = (maxRecordBytes - 4) / contactBytes
)

// Kind identifies a record type.
type Kind uint8

// Record kinds. Checkpoints are written by Writer.Checkpoint, never
// appended directly.
const (
	KindPublish Kind = iota + 1
	KindQuery
	KindAdvance
	KindContacts
	KindCheckpoint
)

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindPublish:
		return "publish"
	case KindQuery:
		return "query"
	case KindAdvance:
		return "advance"
	case KindContacts:
		return "contacts"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one logged op. Only the fields of its Kind are meaningful:
// publish uses Source/SizeBits/LifetimeSec (+OpID), query uses
// Requester/Data/ConstraintSec (+OpID), advance uses To (an absolute
// virtual-time target, which is what makes a retried advance
// idempotent), contacts uses Contacts, and checkpoint uses Now/Ops.
type Record struct {
	Kind Kind

	// OpID is the client idempotency key of a publish/query ("" = none).
	OpID string

	// Publish fields. Zero SizeBits/LifetimeSec mean "engine default",
	// exactly as in the API request they were logged from.
	Source      int32
	SizeBits    float64
	LifetimeSec float64

	// Query fields.
	Requester     int32
	Data          int32
	ConstraintSec float64

	// Advance target (absolute virtual seconds).
	To float64

	// Contact-ingest batch.
	Contacts []trace.Contact

	// Checkpoint marker: virtual time and the count of non-checkpoint
	// records preceding it.
	Now float64
	Ops uint64
}

// PublishRecord builds a publish op record.
func PublishRecord(opID string, source int, sizeBits, lifetimeSec float64) Record {
	return Record{Kind: KindPublish, OpID: opID, Source: int32(source), SizeBits: sizeBits, LifetimeSec: lifetimeSec}
}

// QueryRecord builds a query op record.
func QueryRecord(opID string, requester, data int, constraintSec float64) Record {
	return Record{Kind: KindQuery, OpID: opID, Requester: int32(requester), Data: int32(data), ConstraintSec: constraintSec}
}

// AdvanceRecord builds an advance op record for an absolute target.
func AdvanceRecord(to float64) Record {
	return Record{Kind: KindAdvance, To: to}
}

// ContactsRecord builds a contact-ingest op record.
func ContactsRecord(cs []trace.Contact) Record {
	return Record{Kind: KindContacts, Contacts: cs}
}

// TornTailError reports a recoverable corruption at the end of the log:
// everything before Offset decoded cleanly, the record starting there
// did not. Resume truncates the file at Offset and resumes appending.
type TornTailError struct {
	// Offset is the file offset of the first byte of the bad record —
	// the end of the last valid one.
	Offset int64
	// Record is the 0-based index of the torn record.
	Record int64
	// Reason describes the corruption.
	Reason string
}

// Error implements error.
func (e *TornTailError) Error() string {
	return fmt.Sprintf("wal: torn tail at offset %d (record %d): %s", e.Offset, e.Record, e.Reason)
}

// ErrEmpty reports a zero-length WAL file: a crash between creating the
// file and writing its header. There is nothing to recover and nothing
// to verify; callers recreate the log.
var ErrEmpty = errors.New("wal: empty file")

// SyncPolicy selects when the writer fsyncs.
type SyncPolicy int

// Sync policies, from fastest to most durable.
const (
	// SyncNone never fsyncs (the OS flushes on its own schedule); a
	// power loss may drop the most recent ops, a process crash does not.
	SyncNone SyncPolicy = iota
	// SyncCheckpoint fsyncs at every checkpoint record (the default).
	SyncCheckpoint
	// SyncAlways fsyncs after every record.
	SyncAlways
)

// ParseSyncPolicy maps the flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "checkpoint":
		return SyncCheckpoint, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want none, checkpoint or always)", s)
	}
}

// appendUint16/32/64 are the little-endian encode helpers.
func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendFloat64(b []byte, v float64) []byte {
	return appendUint64(b, math.Float64bits(v))
}

// encodeRecord appends the framed record to buf, validating the fields
// a writer controls (op ID length, batch size).
func encodeRecord(buf []byte, rec Record) ([]byte, error) {
	if len(rec.OpID) > maxOpIDLen {
		return nil, fmt.Errorf("wal: op ID longer than %d bytes", maxOpIDLen)
	}
	start := len(buf)
	buf = append(buf, byte(rec.Kind))
	buf = appendUint32(buf, 0) // payloadLen backpatched below
	payloadStart := len(buf)
	switch rec.Kind {
	case KindPublish:
		buf = appendUint32(buf, uint32(rec.Source))
		buf = appendFloat64(buf, rec.SizeBits)
		buf = appendFloat64(buf, rec.LifetimeSec)
		buf = appendUint16(buf, uint16(len(rec.OpID)))
		buf = append(buf, rec.OpID...)
	case KindQuery:
		buf = appendUint32(buf, uint32(rec.Requester))
		buf = appendUint32(buf, uint32(rec.Data))
		buf = appendFloat64(buf, rec.ConstraintSec)
		buf = appendUint16(buf, uint16(len(rec.OpID)))
		buf = append(buf, rec.OpID...)
	case KindAdvance:
		buf = appendFloat64(buf, rec.To)
	case KindContacts:
		if len(rec.Contacts) > maxContactsPerRecord {
			return nil, fmt.Errorf("wal: contacts record with %d contacts exceeds limit %d", len(rec.Contacts), maxContactsPerRecord)
		}
		buf = appendUint32(buf, uint32(len(rec.Contacts)))
		for _, c := range rec.Contacts {
			buf = appendUint32(buf, uint32(c.A))
		}
		for _, c := range rec.Contacts {
			buf = appendUint32(buf, uint32(c.B))
		}
		for _, c := range rec.Contacts {
			buf = appendFloat64(buf, c.Start)
		}
		for _, c := range rec.Contacts {
			buf = appendFloat64(buf, c.End)
		}
	case KindCheckpoint:
		buf = appendFloat64(buf, rec.Now)
		buf = appendUint64(buf, rec.Ops)
	default:
		return nil, fmt.Errorf("wal: cannot encode unknown record kind %d", rec.Kind)
	}
	payloadLen := len(buf) - payloadStart
	binary.LittleEndian.PutUint32(buf[start+1:], uint32(payloadLen))
	crc := crc32.ChecksumIEEE(buf[start:])
	buf = appendUint32(buf, crc)
	return buf, nil
}

// decodePayload rebuilds a record from its validated payload bytes. Any
// structural mismatch is reported as a torn-tail reason: a checksum
// that matches garbage structure means writer drift, and truncating
// there is the only recovery.
func decodePayload(kind Kind, p []byte) (Record, string) {
	rec := Record{Kind: kind}
	switch kind {
	case KindPublish:
		if len(p) < 22 {
			return rec, fmt.Sprintf("publish payload %d bytes, want >= 22", len(p))
		}
		rec.Source = int32(binary.LittleEndian.Uint32(p[0:]))
		rec.SizeBits = math.Float64frombits(binary.LittleEndian.Uint64(p[4:]))
		rec.LifetimeSec = math.Float64frombits(binary.LittleEndian.Uint64(p[12:]))
		n := int(binary.LittleEndian.Uint16(p[20:]))
		if n > maxOpIDLen || len(p) != 22+n {
			return rec, fmt.Sprintf("publish op ID length %d does not fit payload %d", n, len(p))
		}
		rec.OpID = string(p[22 : 22+n])
	case KindQuery:
		if len(p) < 18 {
			return rec, fmt.Sprintf("query payload %d bytes, want >= 18", len(p))
		}
		rec.Requester = int32(binary.LittleEndian.Uint32(p[0:]))
		rec.Data = int32(binary.LittleEndian.Uint32(p[4:]))
		rec.ConstraintSec = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		n := int(binary.LittleEndian.Uint16(p[16:]))
		if n > maxOpIDLen || len(p) != 18+n {
			return rec, fmt.Sprintf("query op ID length %d does not fit payload %d", n, len(p))
		}
		rec.OpID = string(p[18 : 18+n])
	case KindAdvance:
		if len(p) != 8 {
			return rec, fmt.Sprintf("advance payload %d bytes, want 8", len(p))
		}
		rec.To = math.Float64frombits(binary.LittleEndian.Uint64(p[0:]))
	case KindContacts:
		if len(p) < 4 {
			return rec, fmt.Sprintf("contacts payload %d bytes, want >= 4", len(p))
		}
		count := int(binary.LittleEndian.Uint32(p[0:]))
		if count > maxContactsPerRecord || len(p) != 4+count*contactBytes {
			return rec, fmt.Sprintf("contacts count %d does not match payload %d", count, len(p))
		}
		aOff, bOff := 4, 4+4*count
		sOff, eOff := 4+8*count, 4+16*count
		rec.Contacts = make([]trace.Contact, count)
		for i := 0; i < count; i++ {
			rec.Contacts[i] = trace.Contact{
				A:     trace.NodeID(binary.LittleEndian.Uint32(p[aOff+4*i:])),
				B:     trace.NodeID(binary.LittleEndian.Uint32(p[bOff+4*i:])),
				Start: math.Float64frombits(binary.LittleEndian.Uint64(p[sOff+8*i:])),
				End:   math.Float64frombits(binary.LittleEndian.Uint64(p[eOff+8*i:])),
			}
		}
	case KindCheckpoint:
		if len(p) != 16 {
			return rec, fmt.Sprintf("checkpoint payload %d bytes, want 16", len(p))
		}
		rec.Now = math.Float64frombits(binary.LittleEndian.Uint64(p[0:]))
		rec.Ops = binary.LittleEndian.Uint64(p[8:])
	default:
		return rec, fmt.Sprintf("unknown record kind %d", uint8(kind))
	}
	return rec, ""
}

// Reader decodes a WAL one record at a time. Errors (including io.EOF
// at a clean end) are sticky; a torn tail surfaces as *TornTailError
// carrying the offset recovery should truncate at.
type Reader struct {
	r       *bufio.Reader
	digest  string
	off     int64 // offset after the last cleanly decoded record
	rec     int64 // records delivered
	err     error // sticky
	payload []byte
}

// NewReader parses the header. Header corruption is a hard error, never
// a torn tail: without a trustworthy config digest, replaying the tail
// would be a guess.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("wal: read magic: %w", err)
	}
	if string(magic[:]) != walMagic {
		return nil, fmt.Errorf("wal: bad magic %q (want %q)", magic[:], walMagic)
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("wal: read version: %w", err)
	}
	if v := binary.LittleEndian.Uint16(u16[:]); v != walVersion {
		return nil, fmt.Errorf("wal: unsupported version %d (want %d)", v, walVersion)
	}
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("wal: read header: %w", err)
	}
	digestLen := int(binary.LittleEndian.Uint16(u16[:]))
	digest := make([]byte, digestLen)
	if _, err := io.ReadFull(br, digest); err != nil {
		return nil, fmt.Errorf("wal: read config digest: %w", err)
	}
	return &Reader{
		r:      br,
		digest: string(digest),
		off:    int64(len(walMagic)) + 2 + 2 + int64(digestLen),
	}, nil
}

// Digest returns the config digest the log was created under.
func (rd *Reader) Digest() string { return rd.digest }

// Offset returns the file offset after the last cleanly decoded record
// (the truncation point when the next one is torn).
func (rd *Reader) Offset() int64 { return rd.off }

// Records returns the number of records delivered so far.
func (rd *Reader) Records() int64 { return rd.rec }

// Next returns the next record, io.EOF at a clean end, or a sticky
// *TornTailError for any mid-record corruption.
func (rd *Reader) Next() (Record, error) {
	if rd.err != nil {
		return Record{}, rd.err
	}
	var head [headBytes]byte
	if _, err := io.ReadFull(rd.r, head[:]); err != nil {
		if err == io.EOF {
			rd.err = io.EOF
			return Record{}, rd.err
		}
		return Record{}, rd.torn("truncated record header")
	}
	kind := Kind(head[0])
	payloadLen := int(binary.LittleEndian.Uint32(head[1:]))
	if payloadLen > maxRecordBytes {
		return Record{}, rd.torn(fmt.Sprintf("payload length %d exceeds limit %d", payloadLen, maxRecordBytes))
	}
	if cap(rd.payload) < payloadLen {
		rd.payload = make([]byte, payloadLen)
	}
	payload := rd.payload[:payloadLen]
	if n, err := io.ReadFull(rd.r, payload); err != nil {
		return Record{}, rd.torn(fmt.Sprintf("truncated payload (%d of %d bytes)", n, payloadLen))
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(rd.r, crcBuf[:]); err != nil {
		return Record{}, rd.torn("truncated checksum")
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	got := crc32.Update(crc32.ChecksumIEEE(head[:]), crc32.IEEETable, payload)
	if got != want {
		return Record{}, rd.torn(fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got))
	}
	rec, reason := decodePayload(kind, payload)
	if reason != "" {
		return Record{}, rd.torn(reason)
	}
	rd.off += int64(headBytes + payloadLen + 4)
	rd.rec++
	return rec, nil
}

// torn records and returns the sticky torn-tail error for the record
// currently being decoded.
func (rd *Reader) torn(reason string) error {
	rd.err = &TornTailError{Offset: rd.off, Record: rd.rec, Reason: reason}
	return rd.err
}

// Writer appends records to a WAL file. Each record is written with a
// single Write call, so a crash loses at most the in-flight record —
// exactly the torn tail Resume truncates.
type Writer struct {
	f      *os.File
	digest string
	policy SyncPolicy
	ops    uint64 // non-checkpoint records appended (including recovered ones)
	buf    []byte
	closed bool
}

// Create creates (or truncates) the log at path, writing and syncing
// the header so the config digest is durable before the first op.
func Create(path, digest string, policy SyncPolicy) (*Writer, error) {
	if len(digest) > math.MaxUint16 {
		return nil, fmt.Errorf("wal: config digest longer than %d bytes", math.MaxUint16)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	var hdr []byte
	hdr = append(hdr, walMagic...)
	hdr = appendUint16(hdr, walVersion)
	hdr = appendUint16(hdr, uint16(len(digest)))
	hdr = append(hdr, digest...)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync header: %w", err)
	}
	return &Writer{f: f, digest: digest, policy: policy}, nil
}

// Recovery is what Resume salvaged from an existing log: the cleanly
// decoded records to replay, and the torn-tail error when the file had
// to be truncated.
type Recovery struct {
	Records []Record
	Torn    *TornTailError
}

// Resume opens an existing log for appending: it decodes every record,
// truncates a torn tail in place, and positions the writer at the end.
// The returned records must be replayed into a fresh engine before new
// ops are appended. A zero-length file returns ErrEmpty (recreate it
// with Create); header corruption is a hard error.
func Resume(path string, policy SyncPolicy) (*Writer, *Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: stat: %w", err)
	}
	if st.Size() == 0 {
		f.Close()
		return nil, nil, ErrEmpty
	}
	rd, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	rec := &Recovery{}
	var ops uint64
	for {
		r, err := rd.Next()
		if err == io.EOF {
			break
		}
		var torn *TornTailError
		if errors.As(err, &torn) {
			rec.Torn = torn
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		rec.Records = append(rec.Records, r)
		if r.Kind != KindCheckpoint {
			ops++
		}
	}
	off := rd.Offset()
	if rec.Torn != nil {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Writer{f: f, digest: rd.Digest(), policy: policy, ops: ops}, rec, nil
}

// Digest returns the config digest in the log header.
func (w *Writer) Digest() string { return w.digest }

// Ops returns the number of non-checkpoint records in the log.
func (w *Writer) Ops() uint64 { return w.ops }

// Append logs one op record. Under SyncAlways it is durable on return;
// under the other policies it is durable at the next sync point.
// Checkpoints go through Checkpoint, which stamps the op count.
func (w *Writer) Append(rec Record) error {
	if rec.Kind == KindCheckpoint {
		return errors.New("wal: checkpoints are written by Checkpoint, not Append")
	}
	if err := w.write(rec); err != nil {
		return err
	}
	w.ops++
	if w.policy == SyncAlways {
		return w.Sync()
	}
	return nil
}

// Checkpoint appends a consistency marker carrying the current virtual
// time and the op count so far, syncing under SyncCheckpoint or
// stronger.
func (w *Writer) Checkpoint(now float64) error {
	if err := w.write(Record{Kind: KindCheckpoint, Now: now, Ops: w.ops}); err != nil {
		return err
	}
	if w.policy >= SyncCheckpoint {
		return w.Sync()
	}
	return nil
}

func (w *Writer) write(rec Record) error {
	if w.closed {
		return errors.New("wal: write after Close")
	}
	buf, err := encodeRecord(w.buf[:0], rec)
	if err != nil {
		return err
	}
	w.buf = buf
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append %s: %w", rec.Kind, err)
	}
	return nil
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error {
	if w.closed {
		return errors.New("wal: sync after Close")
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the file. Idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: sync on close: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close: %w", closeErr)
	}
	return nil
}
