package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadWAL feeds arbitrary bytes through the reader: it must never
// panic, never loop, and classify every failure as either a hard header
// error or a recoverable torn tail whose offset lies inside the input.
func FuzzReadWAL(f *testing.F) {
	valid := header("digest-abc")
	valid = append(valid, frame(byte(KindPublish), func() []byte {
		var p []byte
		p = appendUint32(p, 3)
		p = appendFloat64(p, 25e6)
		p = appendFloat64(p, 86400)
		p = appendUint16(p, 4)
		p = append(p, "op-1"...)
		return p
	}())...)
	valid = append(valid, frame(byte(KindAdvance), appendFloat64(nil, 1800))...)
	valid = append(valid, frame(byte(KindCheckpoint), appendUint64(appendFloat64(nil, 1800), 2))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:11])
	f.Add([]byte("DTNWAL"))
	f.Add([]byte{})
	corrupted := bytes.Clone(valid)
	corrupted[len(corrupted)-6] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // hard header error: fine, as long as it didn't panic
		}
		prevOff := rd.Offset()
		for {
			_, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var torn *TornTailError
				if !errors.As(err, &torn) {
					t.Fatalf("record error is neither EOF nor torn tail: %v", err)
				}
				if torn.Offset < prevOff || torn.Offset > int64(len(data)) {
					t.Fatalf("torn offset %d outside [%d, %d]", torn.Offset, prevOff, len(data))
				}
				// Sticky: a second Next returns the same error.
				if _, err2 := rd.Next(); err2 != err {
					t.Fatalf("error not sticky: %v then %v", err, err2)
				}
				break
			}
			if rd.Offset() <= prevOff {
				t.Fatal("reader did not advance")
			}
			prevOff = rd.Offset()
		}
	})
}
