// Package analysistest is a miniature counterpart of
// golang.org/x/tools/go/analysis/analysistest for this repository's
// dependency-free analyzer framework. Test packages live under
// testdata/src/<name>/ and mark expected diagnostics with trailing
// comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Every diagnostic on a line must be matched by exactly one want
// pattern on that line, and vice versa.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dtncache/internal/analysis"
)

// Run loads each named package from testdata/src and checks the
// analyzer's diagnostics against the // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		diags, err := analysis.RunPackage(pkg, a)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, name, err)
		}
		check(t, pkg, diags)
	}
}

type lineKey struct {
	file string
	line int
}

// check matches diagnostics against want annotations line by line.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	got := make(map[lineKey][]string)
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d.Message)
	}
	for k, patterns := range wants {
		msgs := got[k]
		for _, p := range patterns {
			rx, err := regexp.Compile(p)
			if err != nil {
				t.Errorf("%s:%d: bad want pattern %q: %v", k.file, k.line, p, err)
				continue
			}
			idx := -1
			for i, m := range msgs {
				if rx.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: expected diagnostic matching %q, none found (have %v)",
					k.file, k.line, p, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		got[k] = msgs
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// collectWants extracts // want annotations from the package's files.
func collectWants(t *testing.T, pkg *analysis.Package) map[lineKey][]string {
	t.Helper()
	out := make(map[lineKey][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(rest)
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				k := lineKey{pos.Filename, pos.Line}
				out[k] = append(out[k], patterns...)
			}
		}
	}
	return out
}

// parsePatterns reads a sequence of Go-quoted or backquoted strings.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("analysistest: want patterns must be quoted strings, got %q", s)
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("analysistest: bad want pattern in %q: %v", s, err)
		}
		val, err := strconv.Unquote(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, val)
		s = s[len(prefix):]
	}
}
