package analysis_test

import (
	"testing"

	"dtncache/internal/analysis"
	"dtncache/internal/analysis/analysistest"
)

func TestGoGuard(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GoGuard, "goguard")
}
