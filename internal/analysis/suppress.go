package analysis

import "strings"

// suppressKey identifies one (file, line, analyzer) suppression target.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// allowedLines scans a package's comments for //lint:allow directives.
// A directive suppresses the named analyzer on its own line (trailing
// comment) and on the following line (comment above the statement).
func allowedLines(pkg *Package) map[suppressKey]bool {
	out := make(map[suppressKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				name := fields[0]
				pos := pkg.Fset.Position(c.Pos())
				out[suppressKey{pos.Filename, pos.Line, name}] = true
				out[suppressKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return out
}
