package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive is one parsed //lint:allow comment.
type Directive struct {
	Pos      token.Position // position of the comment itself
	Analyzer string         // analyzer name the directive silences
	Note     string         // free-text justification after the name
}

// ParseAllow parses one comment's text ("//lint:allow maporder why") as
// a suppression directive. It accepts both the directive form
// (//lint:allow, no space) and the spaced comment form.
func ParseAllow(text string) (analyzer, note string, ok bool) {
	text = strings.TrimSpace(strings.TrimPrefix(text, "//"))
	rest, found := strings.CutPrefix(text, "lint:allow")
	if !found {
		return "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", false
	}
	return fields[0], strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])), true
}

// suppressKey identifies one (file, line, analyzer) suppression target.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions maps source lines to the //lint:allow directives covering
// them and tracks which directives actually fired, so stale suppressions
// (directives whose analyzer no longer flags the line) are detectable.
type suppressions struct {
	directives []Directive
	lines      map[suppressKey][]int // covered line -> directive indices
	used       []bool                // parallel to directives
}

// collectSuppressions scans a package's comments for //lint:allow
// directives. A directive covers its own line (trailing comment), the
// following line, and — when a statement, spec, or struct field starts
// on either of those lines — that construct's full source span, so a
// directive above a multi-line statement suppresses every line the
// statement occupies, not just its first.
func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{lines: make(map[suppressKey][]int)}

	type anchor struct {
		file string
		line int
	}
	anchors := make(map[anchor][]int) // candidate start lines -> directive indices
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, note, ok := ParseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				idx := len(s.directives)
				s.directives = append(s.directives, Directive{Pos: pos, Analyzer: name, Note: note})
				s.used = append(s.used, false)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := suppressKey{pos.Filename, line, name}
					s.lines[k] = append(s.lines[k], idx)
					anchors[anchor{pos.Filename, line}] = append(anchors[anchor{pos.Filename, line}], idx)
				}
			}
		}
	}
	if len(anchors) == 0 {
		return s
	}

	// For each anchored line, find the smallest statement/spec/field
	// starting there (smallest so a directive above a loop covers the
	// init statement, not the whole loop body) and extend coverage over
	// its span.
	best := make(map[anchor]ast.Node)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch n.(type) {
			case ast.Stmt, ast.Spec, *ast.Field:
			default:
				return true
			}
			start := pkg.Fset.Position(n.Pos())
			k := anchor{start.Filename, start.Line}
			if _, anchored := anchors[k]; !anchored {
				return true
			}
			if cur, ok := best[k]; !ok || n.End() < cur.End() {
				best[k] = n
			}
			return true
		})
	}
	// Sorted order keeps s.lines deterministic when overlapping spans
	// feed the same (file, line, analyzer) key — which directive is
	// credited as "used" must not depend on map iteration order.
	keys := make([]anchor, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		n := best[k]
		endLine := pkg.Fset.Position(n.End()).Line
		for _, idx := range anchors[k] {
			name := s.directives[idx].Analyzer
			for line := k.line; line <= endLine; line++ {
				sk := suppressKey{k.file, line, name}
				if !containsInt(s.lines[sk], idx) {
					s.lines[sk] = append(s.lines[sk], idx)
				}
			}
		}
	}
	return s
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// match reports whether a diagnostic is suppressed, marking every
// directive that covers it as used.
func (s *suppressions) match(d Diagnostic) bool {
	idxs := s.lines[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
	for _, idx := range idxs {
		s.used[idx] = true
	}
	return len(idxs) > 0
}

// Runner runs analyzers over one package with shared suppression state,
// so after a batch of Run calls it can report which //lint:allow
// directives never fired.
type Runner struct {
	pkg *Package
	sup *suppressions
	ran map[string]bool
}

// NewRunner prepares a runner for the package.
func NewRunner(pkg *Package) *Runner {
	return &Runner{
		pkg: pkg,
		sup: collectSuppressions(pkg),
		ran: make(map[string]bool),
	}
}

// Run executes one analyzer and returns its unsuppressed diagnostics
// sorted by position.
func (r *Runner) Run(a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      r.pkg.Fset,
		Files:     r.pkg.Files,
		Pkg:       r.pkg.Types,
		TypesInfo: r.pkg.Info,
		Annot:     r.pkg.Annot,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, r.pkg.Path, err)
	}
	r.ran[a.Name] = true
	var kept []Diagnostic
	for _, d := range pass.diags {
		if r.sup.match(d) {
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

// Stale returns the //lint:allow directives that name an analyzer this
// runner has executed yet never suppressed any of its diagnostics —
// i.e. the flagged code was fixed (or the directive is misspelled
// within the executed set) and the suppression should be deleted.
// Directives naming analyzers that did not run are not judged.
func (r *Runner) Stale() []Directive {
	var out []Directive
	for i, d := range r.sup.directives {
		if r.ran[d.Analyzer] && !r.sup.used[i] {
			out = append(out, d)
		}
	}
	return out
}

// Directives returns every //lint:allow directive found in the package.
func (r *Runner) Directives() []Directive {
	return append([]Directive(nil), r.sup.directives...)
}
