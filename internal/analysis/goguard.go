package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoGuard keeps ad-hoc goroutines out of the determinism-sensitive
// packages until the parallel execution layer lands: every `go`
// statement must sit inside a function annotated //dtn:workerpool, and
// that function must join its goroutines before returning (a
// sync.WaitGroup Wait, a channel receive, or a range over a channel).
// Fire-and-forget concurrency has no place in a replayable simulator —
// either the pool joins deterministically or the goroutine is a bug.
var GoGuard = &Analyzer{
	Name: "goguard",
	Doc:  "flags go statements outside joined //dtn:workerpool functions",
	// The experiment package hosts the parallel sweep driver on top of
	// the deterministic set, so its goroutines are guarded too.
	Scope: append(append([]string{}, DeterministicPackages...), "dtncache/internal/experiment"),
	Run:   runGoGuard,
}

func runGoGuard(pass *Pass) error {
	for _, f := range pass.Files {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			st, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fd := enclosingFuncDecl(stack)
			if fd == nil || !docHasMarker(fd.Doc, MarkerWorkerPool) {
				pass.Reportf(st.Pos(), "go statement outside a //dtn:workerpool function")
				return true
			}
			if !hasJoin(pass, fd) {
				pass.Reportf(st.Pos(), "//dtn:workerpool function %s never joins its goroutines (no WaitGroup.Wait or channel receive)", fd.Name.Name)
			}
			return true
		})
	}
	return nil
}

// enclosingFuncDecl returns the nearest declared function on the stack.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// hasJoin reports whether the function contains a goroutine join point:
// a sync.WaitGroup Wait call, a receive expression, or a range over a
// channel.
func hasJoin(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if tn := namedTypeName(pass.TypeOf(sel.X)); tn != nil &&
					tn.Name() == "WaitGroup" && tn.Pkg() != nil && tn.Pkg().Path() == "sync" {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
