package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The //dtn: annotation vocabulary. Markers are directive comments
// (no space after //, so godoc hides them) that make concurrency
// contracts machine-checkable:
//
//   - //dtn:immutable on a type: fields and reachable slice/map
//     elements may only be written inside the declaring package's
//     constructors (functions whose results include the type). Checked
//     by the immutable analyzer; the static guarantee that makes
//     sharing values across worker goroutines safe.
//   - //dtn:shared on a type: instances are shared across sweep cells
//     or goroutines, so storing an aliased *mathx.Rand in one is a
//     determinism bug. Checked by the rngshare analyzer.
//   - //dtn:rngboundary on a function: every *mathx.Rand argument at a
//     call site must be a freshly derived stream (mathx.NewRand or
//     .Derive result), never an alias the caller keeps drawing from.
//     Checked by the rngshare analyzer.
//   - //dtn:allocfree on a function: the body (or, in a test containing
//     testing.AllocsPerRun, the measured closures) may not contain
//     allocation-forcing constructs. Checked by the allocfree analyzer.
//   - //dtn:workerpool on a function: sanctions `go` statements inside
//     it, provided the function joins its goroutines. Checked by the
//     goguard analyzer.
//   - //dtn:determinism in a package doc comment: opts the package into
//     the determinism-scoped analyzer suite (and scripts/check.sh's
//     auto-discovered -tests lint list).
const (
	MarkerImmutable   = "immutable"
	MarkerShared      = "shared"
	MarkerRNGBoundary = "rngboundary"
	MarkerAllocFree   = "allocfree"
	MarkerWorkerPool  = "workerpool"
	MarkerDeterminism = "determinism"
)

// ParseMarker parses one comment line as a //dtn: annotation. It
// returns the marker name, the free-text note after it, and whether the
// line is an annotation at all. The directive form is strict — "//dtn:"
// with no interior spaces and a nonempty lowercase name — so prose that
// merely mentions the vocabulary never registers.
func ParseMarker(comment string) (name, note string, ok bool) {
	rest, found := strings.CutPrefix(comment, "//dtn:")
	if !found {
		return "", "", false
	}
	name, note, _ = strings.Cut(rest, " ")
	if name == "" {
		return "", "", false
	}
	for _, r := range name {
		if r < 'a' || r > 'z' {
			return "", "", false
		}
	}
	return name, strings.TrimSpace(note), true
}

// docMarkers extracts the annotation names of a doc comment group.
func docMarkers(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var out map[string]bool
	for _, c := range doc.List {
		if name, _, ok := ParseMarker(c.Text); ok {
			if out == nil {
				out = make(map[string]bool)
			}
			out[name] = true
		}
	}
	return out
}

// docHasMarker reports whether a doc comment carries the named
// annotation.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	return docMarkers(doc)[marker]
}

// Annotations is a module-wide registry of //dtn: markers, filled by
// the Loader as it parses packages (the package under analysis and
// every module-local import), so analyzers can ask about types and
// functions declared in other packages — the immutable annotation on
// knowledge.Snapshot must be visible while linting internal/scheme.
type Annotations struct {
	types map[string]map[string]bool // "pkgpath.Type" -> marker set
	funcs map[string]map[string]bool // "pkgpath.Func" or "pkgpath.Recv.Func"
	pkgs  map[string]map[string]bool // package path -> marker set
}

// NewAnnotations returns an empty registry.
func NewAnnotations() *Annotations {
	return &Annotations{
		types: make(map[string]map[string]bool),
		funcs: make(map[string]map[string]bool),
		pkgs:  make(map[string]map[string]bool),
	}
}

// ScanPackage records the //dtn: annotations of a package's parsed
// files under the given import path. Scanning the same path twice is
// harmless (the second scan overwrites identical entries).
func (an *Annotations) ScanPackage(pkgPath string, files []*ast.File) {
	if an == nil {
		return
	}
	for _, f := range files {
		if m := docMarkers(f.Doc); m != nil {
			merged := an.pkgs[pkgPath]
			if merged == nil {
				merged = make(map[string]bool)
				an.pkgs[pkgPath] = merged
			}
			for k := range m {
				merged[k] = true
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if m := docMarkers(d.Doc); m != nil {
					an.funcs[funcDeclKey(pkgPath, d)] = m
				}
			case *ast.GenDecl:
				declMarkers := docMarkers(d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					m := docMarkers(ts.Doc)
					if m == nil {
						m = declMarkers
					}
					if m != nil {
						an.types[pkgPath+"."+ts.Name.Name] = m
					}
				}
			}
		}
	}
}

// funcDeclKey builds the registry key of a declared function:
// "pkg.F" for plain functions, "pkg.T.M" for methods on T or *T.
func funcDeclKey(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkgPath + "." + d.Name.Name
	}
	recv := d.Recv.List[0].Type
	for {
		switch v := recv.(type) {
		case *ast.StarExpr:
			recv = v.X
		case *ast.ParenExpr:
			recv = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			recv = v.X
		default:
			if id, ok := recv.(*ast.Ident); ok {
				return pkgPath + "." + id.Name + "." + d.Name.Name
			}
			return pkgPath + "." + d.Name.Name
		}
	}
}

// TypeMarked reports whether the named type carries the marker.
func (an *Annotations) TypeMarked(tn *types.TypeName, marker string) bool {
	if an == nil || tn == nil || tn.Pkg() == nil {
		return false
	}
	return an.types[tn.Pkg().Path()+"."+tn.Name()][marker]
}

// FuncMarked reports whether the declared function or method carries
// the marker.
func (an *Annotations) FuncMarked(fn *types.Func, marker string) bool {
	if an == nil || fn == nil || fn.Pkg() == nil {
		return false
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := namedTypeName(sig.Recv().Type()); tn != nil {
			key += tn.Name() + "."
		}
	}
	return an.funcs[key+fn.Name()][marker]
}

// PackageMarked reports whether the package doc carries the marker.
func (an *Annotations) PackageMarked(pkgPath, marker string) bool {
	if an == nil {
		return false
	}
	return an.pkgs[pkgPath][marker]
}

// annotations returns the pass's registry, building one from the
// pass's own files when the pass was constructed by hand (tests) rather
// than through the Loader.
func (p *Pass) annotations() *Annotations {
	if p.Annot == nil {
		p.Annot = NewAnnotations()
		path := ""
		if p.Pkg != nil {
			path = p.Pkg.Path()
		}
		p.Annot.ScanPackage(path, p.Files)
	}
	return p.Annot
}

// namedTypeName unwraps pointers and returns the defining TypeName of
// a named type, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
