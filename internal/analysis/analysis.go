// Package analysis is a miniature, dependency-free counterpart of
// golang.org/x/tools/go/analysis, built on the standard library's
// go/parser and go/types only (this repository must build without
// network access, so x/tools cannot be a dependency).
//
// It hosts the determinism lint suite behind cmd/dtnlint: the
// reproduction's headline claim is that every figure in EXPERIMENTS.md
// regenerates bit-identically from a seed, which rests on three
// invariants no ordinary test enforces:
//
//   - all randomness flows through internal/mathx.Rand seeded streams
//     (analyzer "nondeterminism");
//   - no result depends on Go map-iteration order (analyzer "maporder");
//   - RNG streams created per sweep cell or per goroutine derive their
//     seed from the cell index (analyzer "seedflow").
//
// A false positive is silenced with an inline directive on the flagged
// line or the line above:
//
//	//lint:allow maporder reason why the order cannot matter here
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Annot is the module-wide //dtn: annotation registry (nil when a
	// test constructs a Pass by hand; all lookups are nil-safe and the
	// annotation-driven analyzers fall back to scanning p.Files).
	Annot *Annotations

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe shorthand for TypesInfo.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// Analyzer is one static check.
type Analyzer struct {
	Name string
	Doc  string
	// Scope lists package-path prefixes the analyzer applies to when run
	// by the dtnlint driver; empty means every package. Tests run
	// analyzers directly and ignore Scope.
	Scope []string
	Run   func(*Pass) error
}

// AppliesTo reports whether the analyzer's scope covers pkgPath.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

// All returns the dtnlint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism, MapOrder, SeedFlow,
		Immutable, RNGShare, AllocFree, GoGuard,
	}
}

// RunPackage runs one analyzer over a loaded package and returns its
// diagnostics with //lint:allow suppressions already applied, sorted by
// position. Callers that need stale-suppression detection across a
// batch of analyzers should use NewRunner instead.
func RunPackage(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	return NewRunner(pkg).Run(a)
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
