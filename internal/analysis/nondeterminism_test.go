package analysis_test

import (
	"testing"

	"dtncache/internal/analysis"
	"dtncache/internal/analysis/analysistest"
)

func TestNondeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Nondeterminism, "nondet")
}

func TestNondeterminismScope(t *testing.T) {
	a := analysis.Nondeterminism
	for _, pkg := range analysis.DeterministicPackages {
		if !a.AppliesTo(pkg) {
			t.Errorf("scope should cover %s", pkg)
		}
	}
	// The knowledge layer's parallel snapshot builder must sit inside
	// the determinism gate: a regression dropping it from the scope
	// would silently exempt the fan-out from the lint.
	if !a.AppliesTo("dtncache/internal/knowledge") {
		t.Error("scope must cover dtncache/internal/knowledge")
	}
	for _, pkg := range []string{
		"dtncache/internal/mathx", // the sanctioned math/rand wrapper
		"dtncache/cmd/dtnsim",     // CLI wall-clock progress output
		"dtncache/internal/analysis",
	} {
		if a.AppliesTo(pkg) {
			t.Errorf("scope should not cover %s", pkg)
		}
	}
	if !a.AppliesTo("dtncache/internal/sim/subpkg") {
		t.Error("scope should cover subpackages of scoped packages")
	}
}
