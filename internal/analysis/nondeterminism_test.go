package analysis_test

import (
	"testing"

	"dtncache/internal/analysis"
	"dtncache/internal/analysis/analysistest"
)

func TestNondeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Nondeterminism, "nondet")
}

func TestNondeterminismScope(t *testing.T) {
	a := analysis.Nondeterminism
	for _, pkg := range analysis.DeterministicPackages {
		if !a.AppliesTo(pkg) {
			t.Errorf("scope should cover %s", pkg)
		}
	}
	// The knowledge layer's parallel snapshot builder must sit inside
	// the determinism gate: a regression dropping it from the scope
	// would silently exempt the fan-out from the lint.
	if !a.AppliesTo("dtncache/internal/knowledge") {
		t.Error("scope must cover dtncache/internal/knowledge")
	}
	// Fault injection feeds crash/recover times straight into the event
	// heap; dropping it from the scope would let wall-clock or global
	// rand draws silently break faulted-run byte identity.
	if !a.AppliesTo("dtncache/internal/fault") {
		t.Error("scope must cover dtncache/internal/fault")
	}
	// The zero-allocation core — the pooled event heap (sim), the
	// slice-backed per-node stores (scheme, core), the sorted buffer
	// index (buffer), and the dense query records (metrics) — replays
	// results bit-identically only if these packages never touch the
	// wall clock or the global rand source; pin each one to the scope.
	for _, pkg := range []string{
		"dtncache/internal/sim",
		"dtncache/internal/scheme",
		"dtncache/internal/core",
		"dtncache/internal/buffer",
		"dtncache/internal/metrics",
	} {
		if !a.AppliesTo(pkg) {
			t.Errorf("scope must cover the pooled-core package %s", pkg)
		}
	}
	// The observability layer's trace encoder feeds byte-identity
	// checked artifacts: dropping it from the scope would let a
	// wall-clock read slip into recorded traces unnoticed.
	if !a.AppliesTo("dtncache/internal/obs") {
		t.Error("scope must cover dtncache/internal/obs")
	}
	for _, pkg := range []string{
		"dtncache/internal/mathx", // the sanctioned math/rand wrapper
		"dtncache/cmd/dtnsim",     // CLI wall-clock progress output
		"dtncache/internal/analysis",
	} {
		if a.AppliesTo(pkg) {
			t.Errorf("scope should not cover %s", pkg)
		}
	}
	if !a.AppliesTo("dtncache/internal/sim/subpkg") {
		t.Error("scope should cover subpackages of scoped packages")
	}
}
