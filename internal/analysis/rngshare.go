package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGShare enforces RNG stream ownership: a *mathx.Rand (or stdlib
// *rand.Rand) is a single-owner sequential stream, and aliasing one
// across goroutines or sweep cells destroys both determinism and memory
// safety. Where seedflow checks that per-cell streams derive their seed
// correctly, rngshare checks that streams are never *shared*:
//
//   - a `go` statement may not capture a Rand variable from the
//     enclosing scope, nor receive one as a call argument;
//   - a Rand may not be stored into a field (or composite literal) of a
//     type annotated //dtn:shared — those values cross cell boundaries;
//   - a function annotated //dtn:rngboundary takes ownership of its
//     Rand parameters, so call sites must hand over a freshly derived
//     stream (mathx.NewRand, rand.New, or a .Derive call), never an
//     alias the caller keeps drawing from.
var RNGShare = &Analyzer{
	Name: "rngshare",
	Doc:  "flags *mathx.Rand streams aliased across goroutines, //dtn:shared structs, or //dtn:rngboundary calls",
	Run:  runRNGShare,
}

func runRNGShare(pass *Pass) error {
	an := pass.annotations()
	for _, f := range pass.Files {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				checkGoRand(pass, st)
			case *ast.AssignStmt:
				checkSharedStoreAssign(pass, an, st)
			case *ast.CompositeLit:
				checkSharedStoreLit(pass, an, st)
			case *ast.CallExpr:
				checkBoundaryCall(pass, an, st)
			}
			return true
		})
	}
	return nil
}

// isRandType reports whether t (after pointer unwrap) is mathx.Rand or
// a stdlib rand.Rand.
func isRandType(t types.Type) bool {
	tn := namedTypeName(t)
	if tn == nil || tn.Name() != "Rand" || tn.Pkg() == nil {
		return false
	}
	path := tn.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2" || strings.HasSuffix(path, "internal/mathx")
}

// isFreshStream reports whether e is a call that mints a new RNG stream
// at the handover point: mathx.NewRand, rand.New, or any .Derive method
// call (the cell-index reseed idiom).
func isFreshStream(pass *Pass, e ast.Expr) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		return isFreshStream(pass, p.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Derive" {
		return true
	}
	if path, name, ok := pkgFunc(pass.TypesInfo, call.Fun); ok {
		if name == "NewRand" && strings.HasSuffix(path, "internal/mathx") {
			return true
		}
		if name == "New" && (path == "math/rand" || path == "math/rand/v2") {
			return true
		}
	}
	return false
}

// checkGoRand flags Rand streams that leak into a goroutine, either as
// call arguments or captured by the goroutine's closure.
func checkGoRand(pass *Pass, st *ast.GoStmt) {
	for _, arg := range st.Call.Args {
		if isRandType(pass.TypeOf(arg)) && !isFreshStream(pass, arg) {
			pass.Reportf(arg.Pos(), "RNG stream passed to goroutine; derive a per-goroutine stream instead")
		}
	}
	lit, ok := st.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !isRandType(obj.Type()) {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			pass.Reportf(id.Pos(), "goroutine captures RNG stream %s from enclosing scope; derive a per-goroutine stream instead", id.Name)
		}
		return true
	})
}

// checkSharedStoreAssign flags x.field = rng where x's type carries
// //dtn:shared and rng is an aliased (not freshly derived) stream.
func checkSharedStoreAssign(pass *Pass, an *Annotations, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !isRandType(pass.TypeOf(sel)) {
			continue
		}
		tn := namedTypeName(pass.TypeOf(sel.X))
		if tn == nil || !an.TypeMarked(tn, MarkerShared) {
			continue
		}
		if i < len(st.Rhs) && isFreshStream(pass, st.Rhs[i]) {
			continue
		}
		pass.Reportf(lhs.Pos(), "RNG stream stored in //dtn:shared type %s; shared values may not own live streams", tn.Name())
	}
}

// checkSharedStoreLit flags SharedT{rng: r} composite literals that
// smuggle an aliased stream into a //dtn:shared value.
func checkSharedStoreLit(pass *Pass, an *Annotations, lit *ast.CompositeLit) {
	tn := namedTypeName(pass.TypeOf(lit))
	if tn == nil || !an.TypeMarked(tn, MarkerShared) {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if isRandType(pass.TypeOf(val)) && !isFreshStream(pass, val) {
			pass.Reportf(val.Pos(), "RNG stream stored in //dtn:shared type %s; shared values may not own live streams", tn.Name())
		}
	}
}

// checkBoundaryCall flags aliased Rand arguments handed to a function
// annotated //dtn:rngboundary.
func checkBoundaryCall(pass *Pass, an *Annotations, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || !an.FuncMarked(fn, MarkerRNGBoundary) {
		return
	}
	for _, arg := range call.Args {
		if isRandType(pass.TypeOf(arg)) && !isFreshStream(pass, arg) {
			pass.Reportf(arg.Pos(), "aliased RNG stream crosses //dtn:rngboundary %s; pass a freshly derived stream", fn.Name())
		}
	}
}

// calleeFunc resolves the declared function or method a call targets,
// or nil for builtins, conversions, and indirect calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		inner := *call
		inner.Fun = f.X
		return calleeFunc(pass, &inner)
	}
	return nil
}
