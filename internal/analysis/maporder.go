package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` statements over maps whose loop body has
// order-dependent effects:
//
//   - appending to a slice declared outside the loop (unless a later
//     statement in the same function sorts that slice);
//   - writing ordered output (fmt.Print*/Fprint*, Write*/Encode method
//     calls);
//   - consuming randomness (advancing an RNG stream a different number
//     of times per iteration order);
//   - accumulating floating-point sums (+= / -= / *= on an outer
//     float variable: float addition is not associative, so the result
//     depends on iteration order in the last ulps).
//
// The sanctioned pattern is to collect the keys, sort them, and iterate
// the sorted slice — which this analyzer recognizes and accepts.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration with order-dependent effects (appends, output, RNG draws, float accumulation)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		// Examine each function body independently so "sorted later"
		// checks stay within the right scope.
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkMapRanges(pass, body)
			return true
		})
	}
	return nil
}

// checkMapRanges inspects every map-range statement directly inside
// body (not inside nested function literals, which get their own pass).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		reportMapRange(pass, body, rs)
		return true
	})
}

func reportMapRange(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// x = append(x, ...) with x declared outside the loop.
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(v.Lhs) {
					continue
				}
				target := rootIdent(v.Lhs[i])
				if target == nil {
					continue
				}
				obj := info.ObjectOf(target)
				if obj == nil || within(rs, declNode(obj)) {
					continue
				}
				if sortedAfter(pass, funcBody, rs, target.Name) {
					continue
				}
				pass.Reportf(rs.Pos(),
					"map iteration appends to %q in map order; iterate sorted keys or sort %q afterwards", target.Name, target.Name)
			}
			// Float accumulation: x += expr in map order.
			if len(v.Lhs) == 1 && compoundFloatOp(info, v) {
				target := rootIdent(v.Lhs[0])
				if target != nil {
					if obj := info.ObjectOf(target); obj != nil && !within(rs, declNode(obj)) {
						pass.Reportf(rs.Pos(),
							"map iteration accumulates floating-point %q in map order; float addition is not associative — iterate sorted keys", target.Name)
					}
				}
			}
		case *ast.CallExpr:
			if path, name, ok := pkgFunc(info, v.Fun); ok && path == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				pass.Reportf(rs.Pos(),
					"map iteration writes output via fmt.%s in map order; iterate sorted keys", name)
				return true
			}
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if isOutputMethod(sel.Sel.Name) && info.Selections[sel] != nil {
					pass.Reportf(rs.Pos(),
						"map iteration writes output via %s in map order; iterate sorted keys", sel.Sel.Name)
					return true
				}
				if isRNGCall(info, sel) {
					pass.Reportf(rs.Pos(),
						"map iteration draws randomness per key; the RNG stream position becomes order-dependent — iterate sorted keys")
					return true
				}
			}
		}
		return true
	})
}

// declNode wraps an object's declaration position as a node for within.
func declNode(obj types.Object) ast.Node { return posNode(obj.Pos()) }

type posNode token.Pos

func (p posNode) Pos() token.Pos { return token.Pos(p) }
func (p posNode) End() token.Pos { return token.Pos(p) }

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// compoundFloatOp reports whether v is x += / -= / *= on a float.
func compoundFloatOp(info *types.Info, v *ast.AssignStmt) bool {
	switch v.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
	default:
		return false
	}
	t := info.TypeOf(v.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isOutputMethod recognizes method names that produce ordered output.
func isOutputMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return true
	}
	return false
}

// isRNGCall reports whether sel is a method call on a *mathx.Rand or
// *math/rand.Rand receiver, or a top-level math/rand function.
func isRNGCall(info *types.Info, sel *ast.SelectorExpr) bool {
	if path, _, ok := pkgFunc(info, sel); ok {
		return isRandPkg(path)
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Rand" || obj.Pkg() == nil {
		return false
	}
	pp := obj.Pkg().Path()
	return isRandPkg(pp) || strings.HasSuffix(pp, "internal/mathx")
}

// sortedAfter reports whether, after the range statement, the enclosing
// function sorts the named slice: sort.*/slices.Sort*(x, ...) with x as
// first argument, or a method call on x's root whose name contains
// "Sort" (e.g. t.SortContacts()).
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if path, _, ok := pkgFunc(pass.TypesInfo, call.Fun); ok &&
			(path == "sort" || path == "slices") && len(call.Args) > 0 {
			if id := rootIdent(call.Args[0]); id != nil && id.Name == name {
				found = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && strings.Contains(sel.Sel.Name, "Sort") {
			if id := rootIdent(sel.X); id != nil && id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
