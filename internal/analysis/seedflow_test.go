package analysis_test

import (
	"testing"

	"dtncache/internal/analysis"
	"dtncache/internal/analysis/analysistest"
)

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SeedFlow, "seedflow")
}
