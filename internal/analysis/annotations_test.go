package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseTestFile(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseMarker(t *testing.T) {
	cases := []struct {
		in         string
		name, note string
		ok         bool
	}{
		{"//dtn:immutable", "immutable", "", true},
		{"//dtn:allocfree amortized pool note", "allocfree", "amortized pool note", true},
		{"//dtn:workerpool", "workerpool", "", true},
		{"// dtn:immutable", "", "", false}, // spaced comment is prose, not a directive
		{"//dtn:", "", "", false},
		{"//dtn: immutable", "", "", false},
		{"//dtn:Immutable", "", "", false}, // names are lowercase only
		{"//dtn:alloc-free", "", "", false},
		{"//lint:allow maporder x", "", "", false},
		{"plain text", "", "", false},
	}
	for _, c := range cases {
		name, note, ok := ParseMarker(c.in)
		if name != c.name || note != c.note || ok != c.ok {
			t.Errorf("ParseMarker(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, name, note, ok, c.name, c.note, c.ok)
		}
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in             string
		analyzer, note string
		ok             bool
	}{
		{"//lint:allow maporder order cannot matter", "maporder", "order cannot matter", true},
		{"// lint:allow allocfree pool-backed", "allocfree", "pool-backed", true},
		{"//lint:allow goguard", "goguard", "", true},
		{"//lint:allow", "", "", false},
		{"//lint:allowmaporder x", "", "", false},
		{"//lint:deny maporder", "", "", false},
		{"//dtn:immutable", "", "", false},
	}
	for _, c := range cases {
		analyzer, note, ok := ParseAllow(c.in)
		if analyzer != c.analyzer || note != c.note || ok != c.ok {
			t.Errorf("ParseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, analyzer, note, ok, c.analyzer, c.note, c.ok)
		}
	}
}

func TestScanPackageRegistry(t *testing.T) {
	_, f := parseTestFile(t, `
// Package demo is deterministic.
//
//dtn:determinism
package demo

// Frozen is shared.
//
//dtn:immutable
//dtn:shared
type Frozen struct{ n int }

// Loose has no markers.
type Loose struct{}

//dtn:allocfree
func Fast() {}

//dtn:workerpool
func (Frozen) Pool() {}

func plain() {}
`)
	an := NewAnnotations()
	an.ScanPackage("demo", []*ast.File{f})

	if !an.PackageMarked("demo", MarkerDeterminism) {
		t.Error("package marker not registered")
	}
	if an.PackageMarked("demo", MarkerImmutable) {
		t.Error("type marker leaked to package")
	}
	if !an.types["demo.Frozen"][MarkerImmutable] || !an.types["demo.Frozen"][MarkerShared] {
		t.Errorf("Frozen markers = %v", an.types["demo.Frozen"])
	}
	if an.types["demo.Loose"] != nil {
		t.Errorf("Loose should be unmarked, got %v", an.types["demo.Loose"])
	}
	if !an.funcs["demo.Fast"][MarkerAllocFree] {
		t.Error("Fast marker not registered")
	}
	if !an.funcs["demo.Frozen.Pool"][MarkerWorkerPool] {
		t.Errorf("method key not registered, funcs = %v", an.funcs)
	}
	if an.funcs["demo.plain"] != nil {
		t.Error("plain should be unmarked")
	}
}

func FuzzParseMarker(f *testing.F) {
	for _, seed := range []string{
		"//dtn:immutable", "//dtn:allocfree note here", "//dtn:",
		"//dtn: x", "// dtn:shared", "//dtn:UPPER", "//lint:allow maporder x",
		"", "//", "//dtn:determinism\x00", "//dtn:a b c d",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		name, note, ok := ParseMarker(s)
		if !ok {
			if name != "" || note != "" {
				t.Fatalf("ParseMarker(%q): non-ok result leaked (%q, %q)", s, name, note)
			}
			return
		}
		if !strings.HasPrefix(s, "//dtn:") {
			t.Fatalf("ParseMarker(%q) accepted a non-directive", s)
		}
		if name == "" {
			t.Fatalf("ParseMarker(%q) returned ok with empty name", s)
		}
		for _, r := range name {
			if r < 'a' || r > 'z' {
				t.Fatalf("ParseMarker(%q) returned non-lowercase name %q", s, name)
			}
		}
	})
}

func FuzzParseAllow(f *testing.F) {
	for _, seed := range []string{
		"//lint:allow maporder order free", "// lint:allow allocfree x",
		"//lint:allow", "//lint:allowx", "//lint:allow  spaced   note",
		"", "//", "//lint:allow \tname\tnote", "//lint:allow name\x00note",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		analyzer, note, ok := ParseAllow(s)
		if !ok {
			if analyzer != "" || note != "" {
				t.Fatalf("ParseAllow(%q): non-ok result leaked (%q, %q)", s, analyzer, note)
			}
			return
		}
		if analyzer == "" {
			t.Fatalf("ParseAllow(%q) returned ok with empty analyzer", s)
		}
		if strings.ContainsAny(analyzer, " \t\n") {
			t.Fatalf("ParseAllow(%q) returned analyzer with whitespace: %q", s, analyzer)
		}
		if !strings.Contains(s, "lint:allow") {
			t.Fatalf("ParseAllow(%q) accepted a non-directive", s)
		}
		_ = note
	})
}
