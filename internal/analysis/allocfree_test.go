package analysis_test

import (
	"testing"

	"dtncache/internal/analysis"
	"dtncache/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AllocFree, "allocfree")
}
