package analysis

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages lists the packages whose logic must replay
// bit-identically from a seed: everything a simulation result flows
// through. internal/mathx is deliberately absent — it is the one
// sanctioned wrapper around math/rand — and cmd/ is absent because
// wall-clock timing of the CLI (progress lines) does not feed results.
var DeterministicPackages = []string{
	"dtncache/internal/sim",
	"dtncache/internal/core",
	"dtncache/internal/scheme",
	"dtncache/internal/trace",
	"dtncache/internal/graph",
	"dtncache/internal/knowledge",
	"dtncache/internal/buffer",
	"dtncache/internal/knapsack",
	"dtncache/internal/routing",
	"dtncache/internal/workload",
	"dtncache/internal/metrics",
	// The observability layer records simulation events into traces that
	// must stay byte-identical across runs: its encoder and sinks may
	// not read the wall clock (phase timers use a clock injected by the
	// CLI layer) or the global rand source.
	"dtncache/internal/obs",
	// The provenance tracer derives trace IDs from the seed and emits
	// span lines into the byte-deterministic run-trace; any wall-clock
	// or global-rand read would leak into recorded traces.
	"dtncache/internal/provenance",
	// The fault-injection engine's crash/recover schedule is part of the
	// replayed result: every fault draw must come from the seeded RNG
	// tree, never the wall clock or global rand.
	"dtncache/internal/fault",
	// The driver-agnostic engine is the one replay code path every
	// driver (dtnsim, experiment sweeps, dtnserved) shares: it may not
	// read the wall clock — real-time pacing lives in the drivers — and
	// its concurrent request surface is lock-serialized, never
	// goroutine-spawning.
	"dtncache/internal/engine",
	// The write-ahead log must replay an op sequence bit-identically:
	// its framing, recovery and replay code may not consult the wall
	// clock or global rand — fsync timing is the only wall-clock
	// interaction, and it never influences record contents.
	"dtncache/internal/wal",
}

// Nondeterminism flags wall-clock reads and ad-hoc math/rand usage in
// simulation packages: time.Now/Since/Until, top-level math/rand
// functions (which draw from the shared process-global source), and
// rand.New calls whose source is not an explicitly seeded constructor.
var Nondeterminism = &Analyzer{
	Name:  "nondeterminism",
	Doc:   "flags wall-clock time and ad-hoc math/rand usage in simulation packages",
	Scope: DeterministicPackages,
	Run:   runNondeterminism,
}

// wallClockFuncs are the time package functions that read the system
// clock. Everything else in package time (durations, formatting) is
// deterministic.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededSources are math/rand constructors that take an explicit seed,
// making rand.New(...) reproducible.
var seededSources = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}

// randConstructors are math/rand package-level functions that do not
// consume the global source and are therefore not flagged on their own.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func runNondeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			switch {
			case path == "time" && wallClockFuncs[name]:
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock inside simulation logic; use the simulated clock or pass times explicitly", name)
			case isRandPkg(path):
				// Only function *uses* matter; rand.Rand in a type
				// declaration resolves to a TypeName, not a Func.
				fn, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !isFunc || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if name == "New" {
					if !seededRandNew(pass, sel, stack) {
						pass.Reportf(sel.Pos(),
							"rand.New without an explicitly seeded source (rand.NewSource(seed)); use mathx.NewRand so the stream replays from the experiment seed")
					}
					return true
				}
				if !randConstructors[name] {
					pass.Reportf(sel.Pos(),
						"top-level %s.%s draws from the shared process-global source; use a seeded mathx.Rand stream instead", path, name)
				}
			}
			return true
		})
	}
	return nil
}

// seededRandNew reports whether the rand.New call that sel heads passes
// a directly seeded source constructor as its argument.
func seededRandNew(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || call.Fun != sel || len(call.Args) == 0 {
		return false
	}
	argCall, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	path, name, ok := pkgFunc(pass.TypesInfo, argCall.Fun)
	return ok && isRandPkg(path) && seededSources[name]
}
