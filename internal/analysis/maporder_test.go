package analysis_test

import (
	"testing"

	"dtncache/internal/analysis"
	"dtncache/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder")
}
