package analysis_test

import (
	"testing"

	"dtncache/internal/analysis"
	"dtncache/internal/analysis/analysistest"
)

func TestRNGShare(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RNGShare, "rngshare")
}
