package analysis_test

import (
	"path/filepath"
	"testing"

	"dtncache/internal/analysis"
)

// loadTestdataPkg loads one golden package from testdata/src.
func loadTestdataPkg(t *testing.T, name string) *analysis.Package {
	t.Helper()
	loader, err := analysis.NewLoader("testdata")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return pkg
}

// TestSuppressDirectivesFire runs the whole analyzer suite over the
// suppress golden package: every violation there is covered by a
// //lint:allow directive, so the suite must report nothing, and every
// directive must have fired (none stale). This is the shared
// suppress-path coverage for old and new analyzers alike.
func TestSuppressDirectivesFire(t *testing.T) {
	pkg := loadTestdataPkg(t, "suppress")
	runner := analysis.NewRunner(pkg)
	for _, a := range analysis.All() {
		diags, err := runner.Run(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unsuppressed diagnostic: %s", a.Name, d)
		}
	}
	if got := len(runner.Directives()); got != 7 {
		t.Errorf("expected 7 //lint:allow directives in the package, found %d", got)
	}
	for _, d := range runner.Stale() {
		t.Errorf("directive at %s for %s never fired", d.Pos, d.Analyzer)
	}
}

// TestAllowCoversMultilineStatement is the regression test for the
// suppression-span bug: a //lint:allow above a statement used to cover
// only the statement's first line, so a diagnostic on a later line of
// the same statement (here: time.Now() on the second line of a
// multi-line return) escaped suppression.
func TestAllowCoversMultilineStatement(t *testing.T) {
	pkg := loadTestdataPkg(t, "suppress")
	diags, err := analysis.RunPackage(pkg, analysis.Nondeterminism)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic escaped the statement-span suppression: %s", d)
	}
}

// TestStaleDirectives checks the other side: directives whose analyzer
// runs clean are reported as stale so dead suppressions get deleted.
func TestStaleDirectives(t *testing.T) {
	pkg := loadTestdataPkg(t, "stale")
	runner := analysis.NewRunner(pkg)
	for _, a := range analysis.All() {
		diags, err := runner.Run(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			t.Errorf("stale package should be diagnostic-free, got %s", d)
		}
	}
	stale := runner.Stale()
	if len(stale) != 2 {
		t.Fatalf("expected 2 stale directives, got %d: %v", len(stale), stale)
	}
	names := map[string]bool{}
	for _, d := range stale {
		names[d.Analyzer] = true
	}
	if !names["nondeterminism"] || !names["maporder"] {
		t.Errorf("stale directives should name nondeterminism and maporder, got %v", names)
	}
}
