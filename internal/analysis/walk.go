package analysis

import (
	"go/ast"
	"go/types"
)

// WalkStack traverses root in depth-first order, calling fn with each
// node and the stack of its ancestors (outermost first, root excluded
// from its own stack). Returning false skips the node's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// pkgFunc reports the import path and name of e when e is a selector on
// an imported package identifier (e.g. time.Now -> "time", "Now").
func pkgFunc(info *types.Info, e ast.Expr) (path, name string, ok bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (t.Contacts -> t, xs[i] -> xs), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// within reports whether pos lies inside node's source range.
func within(node ast.Node, pos ast.Node) bool {
	return node.Pos() <= pos.Pos() && pos.End() <= node.End()
}

// mentionsAny reports whether any identifier inside e resolves (via
// Uses or Defs) to an object in objs.
func mentionsAny(info *types.Info, e ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
