package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("dtncache/internal/sim")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Annot is the module-wide //dtn: annotation registry, covering this
	// package and every module-local package the loader has parsed so
	// far (all of this package's module imports in particular).
	Annot *Annotations
}

// Marked reports whether this package's doc comment carries the given
// //dtn: marker.
func (p *Package) Marked(marker string) bool {
	return p.Annot.PackageMarked(p.Path, marker)
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: module-local imports are resolved from the
// module root, everything else through the compiler's source importer
// (which reads GOROOT/src and therefore needs no network or export
// data). Loaded type information is cached, so analyzing every package
// of the repo type-checks the standard library once.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	// IncludeTests parses *_test.go files of the package under analysis
	// (in-package tests only; external _test packages are skipped).
	IncludeTests bool

	std   types.ImporterFrom
	cache map[string]*types.Package
	annot *Annotations
}

// NewLoader creates a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        src,
		cache:      make(map[string]*types.Package),
		annot:      NewAnnotations(),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// pathForDir maps a directory to its import path within the module.
func (l *Loader) pathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirForPath maps a module import path to its directory.
func (l *Loader) dirForPath(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadDir parses and type-checks the package in dir. The directory may
// live outside the module tree (analyzer testdata does); module-path
// imports still resolve against the loader's module root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathForDir(dir)
	if err != nil {
		// Out-of-module testdata: synthesize a path from the directory
		// name so diagnostics and scope checks have something to show.
		path = filepath.Base(dir)
	}
	files, err := l.parseDir(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.annot.ScanPackage(path, files)
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Annot: l.annot,
	}, nil
}

// parseDir parses the package's Go files in dir, in sorted order so
// diagnostics are stable.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	// Keep a single package per directory: drop external test packages
	// ("foo_test") that share the directory with package foo.
	pkgName := ""
	for _, f := range parsed {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
			break
		}
	}
	var files []*ast.File
	for _, f := range parsed {
		if pkgName == "" || f.Name.Name == pkgName {
			files = append(files, f)
		}
	}
	return files, nil
}

// Import implements types.Importer for module-local and standard
// library packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if dir, ok := l.dirForPath(path); ok {
		files, err := l.parseDir(dir, false)
		if err != nil {
			return nil, fmt.Errorf("analysis: import %q: %w", path, err)
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.Fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("analysis: import %q: %w", path, err)
		}
		l.annot.ScanPackage(path, files)
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.ImportFrom(path, srcDir, mode)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// ExpandPatterns resolves command-line package patterns ("./...",
// "./internal/trace", ".") relative to root into package directories,
// skipping testdata, vendor, and hidden directories.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "." || base == "" {
				base = root
			} else {
				base = filepath.Join(root, base)
			}
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
						name == "testdata" || name == "vendor" || name == "bin") {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
					add(filepath.Dir(p))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(root, pat))
	}
	sort.Strings(dirs)
	return dirs, nil
}
