package analysis_test

import (
	"testing"

	"dtncache/internal/analysis"
	"dtncache/internal/analysis/analysistest"
)

func TestImmutable(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Immutable, "immutable")
}
