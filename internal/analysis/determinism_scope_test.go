package analysis_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtncache/internal/analysis"
)

// TestDeterminismMarkerMatchesScope pins the //dtn:determinism package
// markers to the DeterministicPackages scope list in both directions:
// every listed package must carry the marker (scripts/check.sh
// auto-discovers the -tests lint set from it), and every marked package
// under internal/ must be in the list — so neither the list nor the
// markers can drift without this test failing.
func TestDeterminismMarkerMatchesScope(t *testing.T) {
	listed := make(map[string]bool)
	for _, p := range analysis.DeterministicPackages {
		rel, ok := strings.CutPrefix(p, "dtncache/")
		if !ok {
			t.Fatalf("unexpected package path %q", p)
		}
		listed[filepath.FromSlash(rel)] = true
	}

	marked := make(map[string]bool)
	fset := token.NewFileSet()
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		if strings.Contains(path, string(filepath.Separator)+"testdata"+string(filepath.Separator)) {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		if f.Doc == nil {
			return nil
		}
		for _, c := range f.Doc.List {
			if name, _, ok := analysis.ParseMarker(c.Text); ok && name == analysis.MarkerDeterminism {
				rel, err := filepath.Rel(root, filepath.Dir(path))
				if err != nil {
					return err
				}
				marked[rel] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for pkg := range listed {
		if !marked[pkg] {
			t.Errorf("%s is in DeterministicPackages but its package doc lacks //dtn:determinism", pkg)
		}
	}
	for pkg := range marked {
		if !listed[pkg] {
			t.Errorf("%s carries //dtn:determinism but is missing from DeterministicPackages", pkg)
		}
	}
}
