// Package nondet exercises the nondeterminism analyzer.
package nondet

import (
	"math/rand"
	"time"
)

// positive cases

func wallClock() float64 {
	start := time.Now()                    // want `time\.Now reads the wall clock`
	_ = time.Since(start)                  // want `time\.Since reads the wall clock`
	_ = time.Until(start.Add(time.Second)) // want `time\.Until reads the wall clock`
	return rand.Float64()                  // want `top-level math/rand\.Float64 draws from the shared process-global source`
}

func globalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `top-level math/rand\.Shuffle`
	return rand.Intn(n)                // want `top-level math/rand\.Intn`
}

func unseeded(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand\.New without an explicitly seeded source`
}

// negative cases

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // explicitly seeded: allowed
}

func durationsAreFine(d time.Duration) time.Duration {
	return d + 3*time.Second // no wall-clock read
}

func typeUsesAreFine() *rand.Rand {
	var r *rand.Rand // referencing the type is not a draw
	return r
}

func suppressed() float64 {
	//lint:allow nondeterminism demo of the suppression directive
	return rand.Float64()
}
