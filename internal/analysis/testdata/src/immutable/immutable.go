// Package immutable exercises the immutable analyzer.
package immutable

// Snapshot is a frozen view shared across future worker goroutines.
//
//dtn:immutable
type Snapshot struct {
	version int
	paths   [][]int32
	weights []float64
}

// NewSnapshot is the constructor: its writes (including those of its
// helper closures) are exempt. This is the annotated-OK case.
func NewSnapshot(n int) *Snapshot {
	s := &Snapshot{version: 1}
	s.paths = make([][]int32, n)
	for i := range s.paths {
		s.paths[i] = []int32{int32(i)}
	}
	s.weights = make([]float64, n)
	fill := func(i int) { s.weights[i] = 1 }
	for i := range s.weights {
		fill(i)
	}
	return s
}

// positive cases

func mutateField(s *Snapshot) {
	s.version = 2 // want `write to //dtn:immutable type immutable\.Snapshot outside its constructor`
}

func mutateElement(s *Snapshot) {
	s.paths[0] = nil // want `write to //dtn:immutable type`
	s.weights[0]++   // want `increment of //dtn:immutable type`
}

func mutateNestedElement(s *Snapshot) {
	s.paths[0][1] = 9 // want `write to //dtn:immutable type`
}

func copyInto(s *Snapshot, src []float64) {
	copy(s.weights, src) // want `copy into //dtn:immutable type`
}

// negative cases

func rebindWholeValue() {
	s := NewSnapshot(1)
	s = NewSnapshot(2) // rebinding the variable is not a mutation
	_ = s
}

type holder struct{ snap *Snapshot }

func storePointer(h *holder, s *Snapshot) {
	h.snap = s // writing a pointer into an unannotated holder is fine
}

// Mutable carries no annotation; writes are unconstrained.
type Mutable struct{ n int }

func mutateUnannotated(m *Mutable) { m.n = 7 }

func suppressed(s *Snapshot) {
	//lint:allow immutable sanctioned pre-publication normalizer
	s.version = 3
}
