// Package suppress exercises the //lint:allow path of every analyzer
// in the suite, including directives above multi-line statements where
// the diagnostic lands past the statement's first line (the span
// regression: a directive must cover the whole statement, not just the
// line below the comment).
package suppress

import (
	"time"

	"dtncache/internal/mathx"
)

// nondeterminism: the wall-clock read sits on the second line of the
// return statement, two lines below the directive.
func wallClock(f func(time.Time) int) int {
	//lint:allow nondeterminism control experiment deliberately measures wall time
	return f(
		time.Now(),
	)
}

// maporder: order-dependent append under a suppressed map range.
func mapAppend(m map[int]int) []int {
	var out []int
	//lint:allow maporder diagnostic dump, output order genuinely free
	for k := range m {
		out = append(out, k)
	}
	return out
}

// seedflow: identical stream per iteration, sanctioned for a control.
func cells(n int, seed int64) {
	for i := 0; i < n; i++ {
		//lint:allow seedflow identical streams wanted for this control experiment
		rng := mathx.NewRand(
			seed,
		)
		_ = rng.Float64()
		_ = i
	}
}

// immutable: a two-line swap statement; the second write is on the line
// after the directive's successor line.
//
//dtn:immutable
type frozen struct {
	a, b int
}

func newFrozen() *frozen { return &frozen{} }

func normalize(f *frozen) {
	//lint:allow immutable sanctioned normalizer runs before publication
	f.a, f.b =
		f.b,
		f.a
}

// rngshare: a control experiment reusing one stream across cells.
//
//dtn:shared
type cell struct{ rng *mathx.Rand }

func reuse(c *cell, rng *mathx.Rand) {
	//lint:allow rngshare single-threaded control reuses the stream
	c.rng = rng
}

// allocfree: amortized growth inside a pinned function.
//
//dtn:allocfree
func grow(xs []int, x int) []int {
	//lint:allow allocfree amortized growth, the backing array is the pool
	return append(
		xs,
		x,
	)
}

// goguard: a sanctioned detached goroutine.
func pump(out chan<- int) {
	//lint:allow goguard detached diagnostic pump, lifetime == process
	go func() {
		out <- 1
	}()
}
