// Package rngshare exercises the rngshare analyzer.
package rngshare

import (
	"sync"

	"dtncache/internal/mathx"
)

// Cell is shared across sweep cells.
//
//dtn:shared
type Cell struct {
	rng  *mathx.Rand
	seed int64
}

// takeOwnership keeps drawing from its stream after returning.
//
//dtn:rngboundary
func takeOwnership(r *mathx.Rand) float64 { return r.Float64() }

// positive cases

func capturedByGoroutine(rng *mathx.Rand, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rng.Float64() // want `goroutine captures RNG stream rng`
	}()
	wg.Wait()
}

func passedToGoroutine(rng *mathx.Rand, wg *sync.WaitGroup) {
	wg.Add(1)
	go func(r *mathx.Rand) {
		defer wg.Done()
		_ = r.Float64()
	}(rng) // want `RNG stream passed to goroutine`
	wg.Wait()
}

func storedInShared(c *Cell, rng *mathx.Rand) {
	c.rng = rng // want `RNG stream stored in //dtn:shared type Cell`
}

func litShared(rng *mathx.Rand) *Cell {
	return &Cell{rng: rng} // want `RNG stream stored in //dtn:shared type Cell`
}

func aliasAcrossBoundary(rng *mathx.Rand) {
	_ = takeOwnership(rng) // want `aliased RNG stream crosses //dtn:rngboundary takeOwnership`
}

// negative cases: handing over a freshly derived stream is the
// annotated-OK pattern everywhere an annotation is involved.

func freshAcrossBoundary(rng *mathx.Rand) {
	_ = takeOwnership(rng.Derive("cell-0"))
	_ = takeOwnership(mathx.NewRand(42))
}

func freshInShared(seed int64) *Cell {
	return &Cell{rng: mathx.NewRand(seed), seed: seed}
}

func freshAssignShared(c *Cell, seed int64) {
	c.rng = mathx.NewRand(seed + 1)
}

func seedNotStream(c *Cell, seed int64) {
	c.seed = seed // storing the seed, not the stream, is sanctioned
}

func goroutineGetsFreshStream(wg *sync.WaitGroup) {
	wg.Add(1)
	go func(r *mathx.Rand) {
		defer wg.Done()
		_ = r.Float64()
	}(mathx.NewRand(7))
	wg.Wait()
}

type unshared struct{ rng *mathx.Rand }

func storedInUnshared(u *unshared, rng *mathx.Rand) {
	u.rng = rng // per-cell private struct may own its stream
}

func suppressed(c *Cell, rng *mathx.Rand) {
	//lint:allow rngshare single-threaded control experiment reuses the stream
	c.rng = rng
}
