// Package maporder exercises the maporder analyzer.
package maporder

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// positive cases

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends to "keys" in map order`
		keys = append(keys, k)
	}
	return keys
}

func printsInMapOrder(m map[string]int) {
	for k, v := range m { // want `map iteration writes output via fmt\.Println in map order`
		fmt.Println(k, v)
	}
}

func writesInMapOrder(m map[string]int, b *strings.Builder) {
	for k := range m { // want `map iteration writes output via WriteString in map order`
		b.WriteString(k)
	}
}

func drawsPerKey(m map[string]int, r *rand.Rand) int {
	total := 0
	for range m { // want `map iteration draws randomness per key`
		total += r.Intn(10)
	}
	return total
}

func floatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration accumulates floating-point "sum" in map order`
		sum += v
	}
	return sum
}

// negative cases

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m { // sorted below: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendThenSortSlice(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

type contactList struct{ contacts []int }

func (c *contactList) SortContacts() { sort.Ints(c.contacts) }

func appendThenMethodSort(m map[int]bool, c *contactList) {
	for k := range m { // c.SortContacts() below: allowed
		c.contacts = append(c.contacts, k)
	}
	c.SortContacts()
}

func localAppendIsFine(m map[string]int) int {
	n := 0
	for k := range m {
		local := []string{}
		local = append(local, k) // target declared inside the loop
		n += len(local)
	}
	return n
}

func intCountersAreFine(m map[string]int) int {
	count := 0
	for _, v := range m {
		count += v // integer addition commutes
	}
	return count
}

func deleteOnlyIsFine(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func suppressedAppend(m map[string]int) []string {
	var keys []string
	//lint:allow maporder order is irrelevant for this probe
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
