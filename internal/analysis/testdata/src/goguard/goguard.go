// Package goguard exercises the goguard analyzer.
package goguard

import "sync"

// positive cases

func adHoc(out chan<- int) {
	go func() { out <- 1 }() // want `go statement outside a //dtn:workerpool function`
}

// fireAndForget is annotated but never joins its goroutines.
//
//dtn:workerpool
func fireAndForget(out chan<- int) {
	go func() { out <- 1 }() // want `never joins its goroutines`
}

// negative cases

// forEach is the sanctioned WaitGroup-joined worker pool: the
// annotated-OK case.
//
//dtn:workerpool
func forEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// channelJoined drains a done channel instead of a WaitGroup.
//
//dtn:workerpool
func channelJoined(n int, fn func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func noGoroutinesAtAll(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func suppressed(out chan<- int) {
	//lint:allow goguard detached diagnostic pump, lifetime == process
	go func() { out <- 1 }()
}
