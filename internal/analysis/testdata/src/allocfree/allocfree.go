// Package allocfree exercises the allocfree analyzer.
package allocfree

import (
	"fmt"
	"testing"
)

type store struct {
	keys []uint64
	vals []float64
}

// lookup is the annotated-OK case: a hand-rolled binary search with no
// allocation anywhere, mirroring the repo's slice-backed store lookups.
//
//dtn:allocfree
func lookup(s *store, key uint64) float64 {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.keys) && s.keys[lo] == key {
		return s.vals[lo]
	}
	return 0
}

// positive cases

//dtn:allocfree
func badMake(n int) []int {
	return make([]int, n) // want `make allocates`
}

//dtn:allocfree
func badAppend(xs []int, x int) []int {
	return append(xs, x) // want `append may grow and allocate`
}

//dtn:allocfree
func badLits() {
	_ = map[string]int{"a": 1} // want `map literal allocates`
	_ = []int{1, 2, 3}         // want `slice literal allocates`
	_ = &store{}               // want `&composite literal allocates`
}

//dtn:allocfree
func badFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt call allocates`
}

//dtn:allocfree
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

func variadicSink(xs ...int) int { return len(xs) }

//dtn:allocfree
func badVariadic() int {
	return variadicSink(1, 2) // want `variadic call with 2 argument\(s\) in the variadic slot`
}

func sink(v any) {}

//dtn:allocfree
func badBoxArg(x int) {
	sink(x) // want `argument boxes a concrete value into interface`
}

//dtn:allocfree
func badBoxConv(x int) any {
	return any(x) // want `conversion to interface`
}

//dtn:allocfree
func badStringConv(b []byte) string {
	return string(b) // want `conversion between string and byte/rune slice`
}

//dtn:allocfree
func badClosure(n int) func() int {
	return func() int { return n } // want `closure captures n`
}

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

//dtn:allocfree
func badMethodValue(c *counter) func() {
	return c.inc // want `method value inc allocates`
}

// test-mode narrowing: only the measured closures are checked.

//dtn:allocfree
func testModeSetupMayAllocate(t *testing.T, s *store) {
	setup := make([]uint64, 8) // setup outside the measured region is fine
	s.keys = setup
	s.vals = make([]float64, 8)
	avg := testing.AllocsPerRun(100, func() {
		_ = lookup(s, 3)
	})
	if avg != 0 {
		t.Errorf("allocs: %v", avg)
	}
}

//dtn:allocfree
func testModeMeasuredRegionChecked(t *testing.T) {
	avg := testing.AllocsPerRun(100, func() {
		_ = make([]int, 1) // want `make allocates`
	})
	_ = avg
	_ = t
}

// negative cases

func unannotatedAllocatesFreely(n int) []int {
	xs := make([]int, 0, n)
	return append(xs, n)
}

//dtn:allocfree
func pointerArgsDoNotBox(s *store) {
	sink(s) // pointers fit the interface word: no allocation
}

//dtn:allocfree
func suppressedGrowth(xs []int, x int) []int {
	//lint:allow allocfree amortized growth, the backing array is the pool
	return append(xs, x)
}
