// Package stale holds //lint:allow directives whose analyzers run but
// no longer flag the covered lines — the stale-suppression detector
// must report every directive in this file.
package stale

import "dtncache/internal/mathx"

func fixedLongAgo(seed int64) *mathx.Rand {
	//lint:allow nondeterminism the wall-clock seed this silenced was removed
	return mathx.NewRand(seed)
}

func neverNeeded(xs []int) int {
	//lint:allow maporder plain slice iteration was never order-dependent
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
