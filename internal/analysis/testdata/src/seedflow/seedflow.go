// Package seedflow exercises the seedflow analyzer.
package seedflow

import (
	"fmt"
	"math/rand"

	"dtncache/internal/mathx"
)

// positive cases

func sameStreamEveryCell(n int, seed int64) {
	for i := 0; i < n; i++ {
		rng := mathx.NewRand(seed) // want `RNG constructed inside a loop with a seed that ignores the iteration`
		_ = rng.Float64()
		_ = i
	}
}

func sameStreamEveryKey(cells map[int]float64, seed int64) {
	for k := range cells {
		r := rand.New(rand.NewSource(seed)) // want `RNG constructed inside a loop with a seed that ignores the iteration`
		cells[k] = r.Float64()
	}
}

func goroutineSharedSeed(seed int64, out chan<- float64) {
	go func() {
		rng := mathx.NewRand(seed) // want `RNG constructed inside a goroutine with a seed that ignores the iteration`
		out <- rng.Float64()
	}()
}

// negative cases

func perIndexSeed(n int, seed int64) {
	for i := 0; i < n; i++ {
		rng := mathx.NewRand(seed + int64(i)) // seed depends on i
		_ = rng.Float64()
	}
}

func perIndexDerive(n int, base *mathx.Rand, seed int64) {
	for i := 0; i < n; i++ {
		rng := mathx.NewRand(seed).Derive(fmt.Sprintf("cell-%d", i)) // derived per index
		_ = rng.Float64()
	}
}

func taintedLocal(n int, seed int64) {
	for i := 0; i < n; i++ {
		cellSeed := seed + int64(i)*1000003
		rng := mathx.NewRand(cellSeed) // local derived from i
		_ = rng.Float64()
	}
}

func goroutineParamSeed(seeds []int64, out chan<- float64) {
	for _, s := range seeds {
		go func(s int64) {
			rng := mathx.NewRand(s) // parameter varies per goroutine
			out <- rng.Float64()
		}(s)
	}
}

func outsideLoopIsFine(seed int64) *mathx.Rand {
	return mathx.NewRand(seed)
}

func suppressed(n int, seed int64) {
	for i := 0; i < n; i++ {
		//lint:allow seedflow identical streams wanted for this control experiment
		rng := mathx.NewRand(seed)
		_ = rng.Float64()
		_ = i
	}
}
