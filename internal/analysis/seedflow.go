package analysis

import (
	"go/ast"
	"go/types"
)

// SeedFlow flags mathx.NewRand (and seeded rand.New) calls inside a
// loop body or a goroutine whose seed expression does not depend on the
// loop index / goroutine parameters. Constructing the same stream in
// every iteration is the bug class parallel sweeps invite: each cell
// silently replays identical randomness, and results stop depending on
// the cell index, so reordering cells (or racing workers) changes which
// stream serves which cell.
//
// A call is accepted when any identifier in the full method chain
// (mathx.NewRand(base).Derive(fmt.Sprintf("cell-%d", i)) counts) is
// tainted by the loop: the loop variables themselves, or a local whose
// initializer mentions a tainted identifier.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "flags per-iteration RNG construction whose seed ignores the loop index",
	Run:  runSeedFlow,
}

func runSeedFlow(pass *Pass) error {
	for _, f := range pass.Files {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRandConstructor(pass, call) {
				return true
			}
			ctx, ctxKind := enclosingLoopOrGoroutine(stack)
			if ctx == nil {
				return true
			}
			tainted := taintedObjects(pass.TypesInfo, stack)
			chain := maximalChain(call, stack)
			if mentionsAny(pass.TypesInfo, chain, tainted) {
				return true
			}
			pass.Reportf(call.Pos(),
				"RNG constructed inside a %s with a seed that ignores the iteration; derive a per-index stream (e.g. base.Derive(fmt.Sprintf(\"cell-%%d\", i)))", ctxKind)
			return true
		})
	}
	return nil
}

// isRandConstructor matches mathx.NewRand(...) and rand.New(...).
func isRandConstructor(pass *Pass, call *ast.CallExpr) bool {
	path, name, ok := pkgFunc(pass.TypesInfo, call.Fun)
	if !ok {
		return false
	}
	if isRandPkg(path) && name == "New" {
		return true
	}
	return name == "NewRand" && pkgPathHasSuffix(path, "internal/mathx")
}

func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix
}

// enclosingLoopOrGoroutine returns the innermost enclosing for/range
// statement, or the innermost function literal launched via `go`, that
// contains the call. Crossing an ordinary (non-go) function literal
// ends the search: the literal may run anywhere, and flagging every
// closure would drown real findings.
func enclosingLoopOrGoroutine(stack []ast.Node) (ast.Node, string) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.ForStmt:
			return v, "loop"
		case *ast.RangeStmt:
			return v, "loop"
		case *ast.FuncLit:
			// A goroutine body appears as go func(...){...}(...): the
			// literal's parent is the CallExpr, whose parent is GoStmt.
			if i > 1 {
				call, isCall := stack[i-1].(*ast.CallExpr)
				_, isGo := stack[i-2].(*ast.GoStmt)
				if isCall && call.Fun == v && isGo {
					return v, "goroutine"
				}
			}
			return nil, ""
		case *ast.FuncDecl:
			return nil, ""
		}
	}
	return nil, ""
}

// taintedObjects collects the objects whose value varies per iteration:
// loop index/value variables of every enclosing loop, parameters of
// enclosing goroutine-launched function literals, and (one fixpoint
// pass) locals whose := initializer mentions a tainted object.
func taintedObjects(info *types.Info, stack []ast.Node) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				tainted[obj] = true
			}
		}
	}
	var bodies []*ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.RangeStmt:
			addIdent(v.Key)
			addIdent(v.Value)
			bodies = append(bodies, v.Body)
		case *ast.ForStmt:
			if init, ok := v.Init.(*ast.AssignStmt); ok {
				for _, l := range init.Lhs {
					addIdent(l)
				}
			}
			switch post := v.Post.(type) {
			case *ast.IncDecStmt:
				addIdent(post.X)
			case *ast.AssignStmt:
				for _, l := range post.Lhs {
					addIdent(l)
				}
			}
			bodies = append(bodies, v.Body)
		case *ast.FuncLit:
			for _, field := range v.Type.Params.List {
				for _, nm := range field.Names {
					addIdent(nm)
				}
			}
			bodies = append(bodies, v.Body)
		case *ast.FuncDecl:
			i = -1
		}
	}
	// Propagate through local definitions until no new objects appear.
	for changed := true; changed; {
		changed = false
		for _, body := range bodies {
			ast.Inspect(body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, l := range as.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := info.ObjectOf(id)
					if obj == nil || tainted[obj] {
						continue
					}
					rhs := as.Rhs[min(i, len(as.Rhs)-1)]
					if mentionsAny(info, rhs, tainted) {
						tainted[obj] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return tainted
}

// maximalChain climbs from the constructor call through enclosing
// selector/call chains so derived seeds count:
// mathx.NewRand(s).Derive(label) is judged as one expression.
func maximalChain(call *ast.CallExpr, stack []ast.Node) ast.Node {
	var cur ast.Node = call
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.SelectorExpr:
			if v.X == cur {
				cur = v
				continue
			}
		case *ast.CallExpr:
			if v.Fun == cur {
				cur = v
				continue
			}
		}
		return cur
	}
	return cur
}
