package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree rejects allocation-forcing constructs inside functions
// annotated //dtn:allocfree — the pooled heap dispatch, slice-backed
// store lookups, and armed-idle fault probe path whose `0 allocs/op`
// benchmark pins this turns into a compile-time property with precise
// per-construct diagnostics.
//
// Flagged constructs: map/slice composite literals and &T{}, the
// make/new/append builtins, fmt calls, variadic calls with a filled
// variadic slot, interface-boxing arguments and conversions (a
// non-pointer-shaped concrete value handed to an interface), capturing
// closures, string concatenation, string<->[]byte/[]rune conversions,
// and method values.
//
// Calls to unannotated functions are trusted, not traversed — the
// annotation marks each frame of a hot path individually and the
// benchmarks still pin the cross-function total. In test functions the
// check narrows to the measured regions: if the body calls
// testing.AllocsPerRun, only the function literals passed to it are
// analyzed, so setup code may allocate freely.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "flags allocation-forcing constructs in //dtn:allocfree functions",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !docHasMarker(fd.Doc, MarkerAllocFree) {
				continue
			}
			for _, region := range allocRegions(pass, fd) {
				checkAllocRegion(pass, region)
			}
		}
	}
	return nil
}

// allocRegions returns the function bodies to check: the whole body
// normally, or the measured closures when the function benchmarks via
// testing.AllocsPerRun.
func allocRegions(pass *Pass, fd *ast.FuncDecl) []*ast.BlockStmt {
	var measured []*ast.BlockStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgFunc(pass.TypesInfo, call.Fun); !ok || path != "testing" || name != "AllocsPerRun" {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				measured = append(measured, lit.Body)
			}
		}
		return true
	})
	if len(measured) > 0 {
		return measured
	}
	return []*ast.BlockStmt{fd.Body}
}

// checkAllocRegion reports every allocation-forcing construct in body.
func checkAllocRegion(pass *Pass, body *ast.BlockStmt) {
	WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			if t := pass.TypeOf(v); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(v.Pos(), "map literal allocates")
				case *types.Slice:
					pass.Reportf(v.Pos(), "slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := v.X.(*ast.CompositeLit); ok {
					pass.Reportf(v.Pos(), "&composite literal allocates")
				}
			}
		case *ast.CallExpr:
			checkAllocCall(pass, v)
		case *ast.FuncLit:
			if obj := capturedObject(pass, v, body); obj != nil {
				pass.Reportf(v.Pos(), "closure captures %s and allocates; hoist the closure or pass state explicitly", obj.Name())
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isStringType(pass.TypeOf(v)) {
				pass.Reportf(v.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isStringType(pass.TypeOf(v.Lhs[0])) {
				pass.Reportf(v.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			checkMethodValue(pass, v, stack)
		case *ast.GoStmt:
			pass.Reportf(v.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

// checkAllocCall classifies one call expression: allocating builtins,
// type conversions, fmt, filled variadic slots, and interface-boxing
// arguments.
func checkAllocCall(pass *Pass, call *ast.CallExpr) {
	// Conversions: T(x) where T is a type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkAllocConversion(pass, call, tv.Type)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates")
			case "new":
				pass.Reportf(call.Pos(), "new allocates")
			case "append":
				pass.Reportf(call.Pos(), "append may grow and allocate")
			}
			return
		}
	}
	if path, _, ok := pkgFunc(pass.TypesInfo, call.Fun); ok && path == "fmt" {
		pass.Reportf(call.Pos(), "fmt call allocates (formatting and interface boxing)")
		return
	}
	sig, _ := pass.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		pass.Reportf(call.Pos(), "variadic call with %d argument(s) in the variadic slot allocates the argument slice",
			len(call.Args)-sig.Params().Len()+1)
	}
	// Interface boxing: a non-pointer-shaped concrete argument passed
	// for an interface parameter forces a heap copy.
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || !sig.Variadic():
			if i >= sig.Params().Len() {
				continue
			}
			param = sig.Params().At(i).Type()
		case call.Ellipsis.IsValid():
			continue // x... passes the slice through, no boxing here
		default:
			param = sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := param.(*types.Slice); ok {
				param = s.Elem()
			}
		}
		if types.IsInterface(param) && boxesOnConversion(pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "argument boxes a concrete value into interface %s and allocates", param.String())
		}
	}
}

// checkAllocConversion flags conversions that copy: string<->[]byte,
// string<->[]rune, and concrete-to-interface.
func checkAllocConversion(pass *Pass, call *ast.CallExpr, to types.Type) {
	from := pass.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	switch {
	case isStringType(to) && isByteOrRuneSlice(from),
		isByteOrRuneSlice(to) && isStringType(from):
		pass.Reportf(call.Pos(), "conversion between string and byte/rune slice copies and allocates")
	case types.IsInterface(to) && boxesOnConversion(from):
		pass.Reportf(call.Pos(), "conversion to interface %s boxes and allocates", to.String())
	}
}

// checkMethodValue flags x.M used as a value (not immediately called):
// a method value allocates its receiver-binding closure.
func checkMethodValue(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == sel {
			return
		}
	}
	pass.Reportf(sel.Pos(), "method value %s allocates its bound-receiver closure", sel.Sel.Name)
}

// capturedObject returns a variable the literal captures from the
// enclosing function (declared outside the literal but not at package
// scope), or nil. Capturing closures allocate; closures over package
// globals compile to static functions and do not.
func capturedObject(pass *Pass, lit *ast.FuncLit, region *ast.BlockStmt) types.Object {
	var captured types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Parent() == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Parent() == types.Universe || obj.Pkg() == nil {
			return true
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return true // package-level variable: no capture allocation
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the literal (params, locals)
		}
		captured = obj
		return false
	})
	return captured
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxesOnConversion reports whether converting a value of concrete type
// t to an interface forces an allocation. Pointer-shaped types (
// pointers, channels, maps, funcs, unsafe.Pointer) fit in the interface
// data word directly; interfaces and untyped nil never box.
func boxesOnConversion(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}
