package analysis

import (
	"go/ast"
	"go/types"
)

// Immutable enforces the //dtn:immutable annotation: a value of an
// annotated type (knowledge.Snapshot, trace.Trace, obs.Manifest — the
// values the parallel-replay work will share across worker goroutines)
// may not have its fields, or slice/map elements reached through its
// fields, written outside a constructor.
//
// A constructor is any function whose results include the type (T, *T,
// or []T/[]*T) — knowledge.Builder.Build, the trace readers, and test
// fixtures that build-and-return a value all qualify, including the
// closures they spawn: a value under construction is not yet shared, so
// whoever still holds the only reference may fill it in. Whole-value
// rebinding of a variable (x = NewT()) is always fine; only writes that
// reach *into* an annotated value are mutations.
//
// The check is syntactic over the write chain (selector, index, deref,
// copy, ++/--). Mutation hidden behind a method call on a field (e.g. a
// sync.Map) is out of reach and must be internally synchronized — the
// annotation documents the contract, the analyzer enforces the part a
// type-checker can see.
var Immutable = &Analyzer{
	Name: "immutable",
	Doc:  "flags writes to fields or elements of //dtn:immutable types outside their constructors",
	Run:  runImmutable,
}

func runImmutable(pass *Pass) error {
	an := pass.annotations()
	for _, f := range pass.Files {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkImmutableWrite(pass, an, lhs, stack, "write to")
				}
			case *ast.IncDecStmt:
				checkImmutableWrite(pass, an, st.X, stack, "increment of")
			case *ast.CallExpr:
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						checkImmutableWrite(pass, an, st.Args[0], stack, "copy into")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkImmutableWrite climbs the written expression's access chain
// (x.f, x.f[i], *p, parens). If any base along the chain is a value of
// an //dtn:immutable-annotated type, the write mutates that value and
// is reported unless the enclosing function is a constructor.
func checkImmutableWrite(pass *Pass, an *Annotations, lhs ast.Expr, stack []ast.Node, verb string) {
	e := lhs
	for {
		var base ast.Expr
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.SelectorExpr:
			base = v.X
		case *ast.IndexExpr:
			base = v.X
		case *ast.StarExpr:
			base = v.X
		default:
			return
		}
		if tn := immutableTypeName(pass, an, base); tn != nil {
			if !inConstructorOf(pass, stack, tn) {
				pass.Reportf(lhs.Pos(), "%s //dtn:immutable type %s.%s outside its constructor",
					verb, tn.Pkg().Name(), tn.Name())
			}
			return
		}
		e = base
	}
}

// immutableTypeName returns the defining TypeName when e's type (after
// pointer unwrap) is a named type annotated //dtn:immutable.
func immutableTypeName(pass *Pass, an *Annotations, e ast.Expr) *types.TypeName {
	tn := namedTypeName(pass.TypeOf(e))
	if tn != nil && an.TypeMarked(tn, MarkerImmutable) {
		return tn
	}
	return nil
}

// inConstructorOf reports whether the write site sits inside a
// constructor of tn: a function whose results include tn (possibly
// behind a pointer or slice). Function literals inherit the verdict of
// the nearest enclosing declared function, so a builder's worker
// closures stay exempt.
func inConstructorOf(pass *Pass, stack []ast.Node, tn *types.TypeName) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			return false
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return false
		}
		res := sig.Results()
		for j := 0; j < res.Len(); j++ {
			t := res.At(j).Type()
			if s, ok := t.(*types.Slice); ok {
				t = s.Elem()
			}
			if namedTypeName(t) == tn {
				return true
			}
		}
		return false
	}
	return false
}
