// Package dtncache is a trace-driven simulation library for cooperative
// caching in Disruption Tolerant Networks, reproducing "Supporting
// Cooperative Caching in Disruption Tolerant Networks" (Gao, Cao,
// Iyengar, Srivatsa — ICDCS 2011).
//
// The library bundles everything the paper's evaluation needs:
//
//   - synthetic contact traces calibrated to the paper's Table I, plus a
//     reader for real contact lists (package internal/trace);
//   - a discrete-event DTN simulator with bandwidth-limited contacts
//     (internal/sim);
//   - the network contact graph, opportunistic path weights and the NCL
//     selection metric of Sec. IV (internal/graph, internal/mathx);
//   - the paper's intentional NCL caching scheme (internal/core) and the
//     four comparison schemes NoCache / RandomCache / CacheData /
//     BundleCache (internal/scheme);
//   - experiment harnesses regenerating every table and figure
//     (internal/experiment).
//
// This root package is the stable entry point: it re-exports the types
// and helpers a downstream user needs to run simulations and analyses
// without reaching into internal packages.
//
// # Quick start
//
//	tr, _ := dtncache.GenerateTrace(dtncache.MITReality, 1)
//	rep, _ := dtncache.Run(dtncache.Setup{Trace: tr, K: 8}, dtncache.SchemeIntentional)
//	fmt.Printf("success %.1f%%, delay %.1fh\n", 100*rep.SuccessRatio, rep.MeanDelaySec/3600)
package dtncache

import (
	"io"

	"dtncache/internal/experiment"
	"dtncache/internal/knowledge"
	"dtncache/internal/metrics"
	"dtncache/internal/routing"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
)

// Re-exported core types. The aliases keep one canonical definition in
// the internal packages while giving users a stable import path.
type (
	// Trace is a DTN contact trace.
	Trace = trace.Trace
	// Contact is one opportunistic contact between two nodes.
	Contact = trace.Contact
	// NodeID identifies a node.
	NodeID = trace.NodeID
	// TraceConfig parameterizes the synthetic trace generator.
	TraceConfig = trace.GenConfig
	// RWPConfig parameterizes the random-waypoint mobility generator.
	RWPConfig = trace.RWPConfig
	// Preset names one of the paper's four traces.
	Preset = trace.Preset
	// Setup describes one simulation run (trace + workload + protocol
	// parameters; zero values pick the paper's defaults).
	Setup = experiment.Setup
	// Report is the metric summary of one run.
	Report = metrics.Report
	// Table is a formatted result table for a reproduced figure.
	Table = experiment.Table
	// FigureOptions tunes the figure regenerators.
	FigureOptions = experiment.FigureOptions
	// ResponseMode selects the probabilistic-response strategy of
	// Sec. V-C.
	ResponseMode = scheme.ResponseMode
	// Knowledge is a thread-safe provider of versioned, immutable
	// network-knowledge snapshots (contact rates → opportunistic paths →
	// NCL metrics) that concurrent runs share via Setup.Knowledge.
	Knowledge = knowledge.Provider
	// KnowledgeSnapshot is one immutable knowledge view: path weights
	// and NCL metrics at a build time.
	KnowledgeSnapshot = knowledge.Snapshot
)

// Probabilistic response modes (Sec. V-C).
const (
	// ResponseGlobal replies with probability p_CR(T_q - t0) from full
	// path knowledge.
	ResponseGlobal = scheme.ResponseGlobal
	// ResponseSigmoid replies with the sigmoid probability of Eq. (4).
	ResponseSigmoid = scheme.ResponseSigmoid
	// ResponseAlways always replies (ablation).
	ResponseAlways = scheme.ResponseAlways
)

// The four trace presets of Table I.
const (
	Infocom05  = trace.Infocom05
	Infocom06  = trace.Infocom06
	MITReality = trace.MITReality
	UCSD       = trace.UCSD
)

// Scheme names accepted by Run.
const (
	SchemeIntentional     = experiment.SchemeIntentional
	SchemeNoCache         = experiment.SchemeNoCache
	SchemeRandomCache     = experiment.SchemeRandomCache
	SchemeCacheData       = experiment.SchemeCacheData
	SchemeBundleCache     = experiment.SchemeBundleCache
	SchemeIntentionalFIFO = experiment.SchemeIntentionalFIFO
	SchemeIntentionalLRU  = experiment.SchemeIntentionalLRU
	SchemeIntentionalGDS  = experiment.SchemeIntentionalGDS
)

// Schemes lists the five data access schemes compared in Fig. 10.
func Schemes() []string { return experiment.SchemeNames() }

// ReplacementSchemes lists the Fig. 12 replacement comparison variants.
func ReplacementSchemes() []string { return experiment.ReplacementNames() }

// GenerateTrace creates a synthetic contact trace calibrated to the
// given Table I preset.
func GenerateTrace(p Preset, seed int64) (*Trace, error) {
	return trace.GeneratePreset(p, seed)
}

// GenerateCustomTrace creates a synthetic trace from an explicit
// configuration.
func GenerateCustomTrace(cfg TraceConfig) (*Trace, error) {
	tr, _, err := trace.Generate(cfg)
	return tr, err
}

// GenerateRWPTrace creates a contact trace from random-waypoint
// mobility in a square arena — a geometric alternative to the Poisson
// contact model.
func GenerateRWPTrace(cfg RWPConfig) (*Trace, error) {
	return trace.GenerateRWP(cfg)
}

// ReadTrace parses a plain-text contact trace ("a b start end" lines,
// '#' comments with optional metadata header).
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// ReadTraceONE parses connection events in the ONE simulator's
// StandardEventsReader format ("<time> CONN <a> <b> up|down").
func ReadTraceONE(r io.Reader) (*Trace, error) { return trace.ReadONE(r) }

// WriteTrace serializes a trace in the plain-text format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// Run executes one trace-driven simulation of the named scheme and
// returns its metrics.
func Run(s Setup, schemeName string) (Report, error) {
	return experiment.Run(s, schemeName)
}

// RunAveraged repeats Run over consecutive seeds and averages the
// headline metrics.
func RunAveraged(s Setup, schemeName string, repeats int) (Report, error) {
	return experiment.RunAveraged(s, schemeName, repeats)
}

// RunComparison runs every named scheme on the same setup concurrently
// with one shared knowledge pipeline, returning reports in name order;
// each report is bit-identical to an isolated Run.
func RunComparison(s Setup, names []string) ([]Report, error) {
	return experiment.RunComparison(s, names)
}

// SharedKnowledge builds the knowledge provider for a trace that sweep
// cells share via Setup.Knowledge (metricT = 0 picks the trace's
// default horizon).
func SharedKnowledge(tr *Trace, metricT float64) *Knowledge {
	return experiment.SharedKnowledge(tr, metricT)
}

// Routing-substrate re-exports: the canonical DTN unicast forwarding
// strategies (Sec. II's related work) with an evaluation harness.
type (
	// RoutingStrategy is a DTN unicast forwarding strategy.
	RoutingStrategy = routing.Strategy
	// RoutingConfig parameterizes EvaluateRouting.
	RoutingConfig = routing.EvalConfig
	// RoutingResult summarizes one strategy's delivery performance.
	RoutingResult = routing.Result
)

// Canonical routing strategies. NewPRoPHET and GradientStrategy build
// the stateful ones.
var (
	// DirectDelivery hands messages only to their destination.
	DirectDelivery RoutingStrategy = routing.DirectDelivery{}
	// EpidemicRouting floods every contact.
	EpidemicRouting RoutingStrategy = routing.Epidemic{}
	// SprayAndWait is binary spray-and-wait.
	SprayAndWait RoutingStrategy = routing.SprayAndWait{}
)

// NewPRoPHET creates a PRoPHET strategy for an n-node network.
func NewPRoPHET(n int) RoutingStrategy { return routing.NewPRoPHET(n) }

// GradientStrategy builds the paper's relay-metric forwarding from a
// score function (higher = better relay toward dst).
func GradientStrategy(score func(node, dst NodeID) float64) RoutingStrategy {
	return &routing.Gradient{Score: score}
}

// EvaluateRouting replays the trace and reports the strategy's delivery
// ratio, delay and transmission overhead on random unicast messages.
func EvaluateRouting(tr *Trace, s RoutingStrategy, cfg RoutingConfig) (RoutingResult, error) {
	return routing.Evaluate(tr, s, cfg)
}

// NCLMetrics computes the NCL selection metric C_i (Eq. 3) for every
// node of a trace at horizon metricT seconds.
func NCLMetrics(tr *Trace, metricT float64) ([]float64, error) {
	return experiment.NCLMetrics(tr, metricT)
}

// DefaultMetricT returns the paper's (adaptively chosen) path-weight
// horizon for a trace name.
func DefaultMetricT(name string) float64 { return experiment.DefaultMetricT(name) }
